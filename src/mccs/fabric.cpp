#include "mccs/fabric.h"

#include <algorithm>
#include <ostream>
#include <string>

#include "telemetry/json.h"

namespace mccs::svc {

Fabric::Fabric(cluster::Cluster cluster)
    : Fabric(std::move(cluster), Options{}) {}

Fabric::Fabric(cluster::Cluster cluster, Options options)
    : cluster_(std::move(cluster)) {
  network_ = std::make_unique<net::Network>(loop_, cluster_.topology(),
                                            options.network);
  gpus_ = std::make_unique<gpu::GpuRuntime>(loop_, cluster_.gpu_count(),
                                            options.gpu_config);

  context_.loop = &loop_;
  context_.network = network_.get();
  context_.gpus = gpus_.get();
  context_.cluster = &cluster_;
  context_.config = options.config;
  context_.seed = options.seed;
  telemetry_.set_enabled(options.config.enable_telemetry);
  context_.telemetry = &telemetry_;
  network_->set_telemetry(&telemetry_);
  context_.proxy_for = [this](GpuId gpu) -> ProxyEngine& { return proxy_for(gpu); };
  context_.send_control = [this](HostId /*from*/, HostId /*to*/,
                                 std::function<void()> fn, Time extra) {
    loop_.schedule_after(context_.config.control_hop_latency + extra,
                         std::move(fn));
  };

  services_.reserve(cluster_.host_count());
  for (std::size_t h = 0; h < cluster_.host_count(); ++h) {
    services_.push_back(std::make_unique<Service>(
        context_, *this, HostId{static_cast<std::uint32_t>(h)}));
  }
}

Fabric::~Fabric() = default;

Service& Fabric::service(HostId host) {
  MCCS_EXPECTS(host.get() < services_.size());
  return *services_[host.get()];
}

Shim& Fabric::connect(AppId app, GpuId gpu) {
  return service(cluster_.host_of_gpu(gpu)).connect(app, gpu);
}

ProxyEngine& Fabric::proxy_for(GpuId gpu) {
  return service(cluster_.host_of_gpu(gpu)).proxy(gpu);
}

UniqueId Fabric::new_unique_id() { return UniqueId{next_unique_id_++}; }

void Fabric::set_strategy_provider(
    std::function<CommStrategy(const CommInfo&)> provider) {
  strategy_provider_ = std::move(provider);
}

void Fabric::bootstrap_join(UniqueId uid, int nranks, int rank, AppId app,
                            GpuId gpu, std::function<void(CommId)> on_ready) {
  MCCS_EXPECTS(uid.valid());
  MCCS_EXPECTS(nranks >= 1 && rank >= 0 && rank < nranks);
  BootstrapState& bs = bootstraps_[uid.value];
  if (bs.joined.empty()) {
    bs.nranks = nranks;
  } else {
    MCCS_CHECK(bs.nranks == nranks, "ranks disagree on communicator size");
  }
  for (const BootstrapEntry& e : bs.joined) {
    MCCS_CHECK(e.rank != rank, "rank joined the same rendezvous twice");
  }
  bs.joined.push_back(BootstrapEntry{rank, app, gpu, std::move(on_ready)});

  if (static_cast<int>(bs.joined.size()) == bs.nranks) {
    BootstrapState state = std::move(bs);
    bootstraps_.erase(uid.value);
    // Rendezvous complete: after the bootstrap latency (the rank-0 control
    // ring exchange of §4.2), install the communicator everywhere.
    loop_.schedule_after(context_.config.bootstrap_latency,
                         [this, uid, state = std::move(state)]() mutable {
                           finish_bootstrap(uid, std::move(state));
                         });
  }
}

void Fabric::finish_bootstrap(UniqueId /*uid*/, BootstrapState state) {
  std::sort(state.joined.begin(), state.joined.end(),
            [](const BootstrapEntry& a, const BootstrapEntry& b) {
              return a.rank < b.rank;
            });

  CommInfo info;
  info.id = CommId{next_comm_id_++};
  info.app = state.joined.front().app;
  info.nranks = state.nranks;
  info.gpus.reserve(state.joined.size());
  for (const BootstrapEntry& e : state.joined) {
    MCCS_CHECK(e.app == info.app, "communicator spans applications");
    info.gpus.push_back(e.gpu);
  }

  const CommStrategy strategy =
      strategy_provider_ ? strategy_provider_(info)
                         : nccl_default_strategy(info.gpus, cluster_);

  for (const BootstrapEntry& e : state.joined) {
    CommSetup setup;
    setup.id = info.id;
    setup.app = info.app;
    setup.rank = e.rank;
    setup.nranks = state.nranks;
    setup.gpus = info.gpus;
    setup.strategy = strategy;
    proxy_for(e.gpu).install_communicator(setup);
  }
  comms_.emplace(info.id.get(), info);

  // Notify the shims (completion queue hop).
  for (BootstrapEntry& e : state.joined) {
    if (e.on_ready) {
      loop_.schedule_after(context_.config.service_to_shim_latency,
                           [cb = std::move(e.on_ready), id = info.id] { cb(id); });
    }
  }
}

std::vector<CommInfo> Fabric::list_communicators() const {
  std::vector<CommInfo> out;
  out.reserve(comms_.size());
  for (const auto& [id, info] : comms_) out.push_back(info);
  std::sort(out.begin(), out.end(),
            [](const CommInfo& a, const CommInfo& b) { return a.id < b.id; });
  return out;
}

const CommInfo& Fabric::comm_info(CommId comm) const {
  auto it = comms_.find(comm.get());
  MCCS_EXPECTS(it != comms_.end());
  return it->second;
}

const CommInfo* Fabric::find_comm_info(CommId comm) const {
  auto it = comms_.find(comm.get());
  if (it != comms_.end()) return &it->second;
  MCCS_CHECK(killed_comms_.count(comm.get()) > 0,
             "reference to an unknown communicator");
  return nullptr;
}

const CommStrategy& Fabric::strategy_of(CommId comm) {
  const CommInfo& info = comm_info(comm);
  return proxy_for(info.gpus.front()).strategy(comm);
}

void Fabric::reconfigure(CommId comm, CommStrategy strategy,
                         std::vector<Time> delays) {
  const CommInfo& info = comm_info(comm);
  MCCS_EXPECTS(delays.empty() ||
               delays.size() == static_cast<std::size_t>(info.nranks));
  const std::uint64_t round = ++reconfig_rounds_[comm.get()];
  for (int r = 0; r < info.nranks; ++r) {
    const GpuId gpu = info.gpus[static_cast<std::size_t>(r)];
    ProxyEngine* proxy = &proxy_for(gpu);
    const Time extra = delays.empty() ? 0.0 : delays[static_cast<std::size_t>(r)];
    context_.send_control(HostId{0}, cluster_.host_of_gpu(gpu),
                          [proxy, comm, round, strategy] {
                            proxy->request_reconfigure(comm, round, strategy);
                          },
                          extra);
  }
}

void Fabric::destroy_communicator(CommId comm) {
  const CommInfo info = comm_info(comm);  // copy: the registry entry goes away
  for (GpuId gpu : info.gpus) {
    ProxyEngine* proxy = &proxy_for(gpu);
    context_.send_control(HostId{0}, cluster_.host_of_gpu(gpu),
                          [proxy, comm] { proxy->destroy_communicator(comm); },
                          0.0);
  }
  comms_.erase(comm.get());
  reconfig_rounds_.erase(comm.get());
}

KillReport Fabric::kill_app(AppId app) {
  KillReport report;
  report.app = app;

  // The whole teardown is one mutation epoch: every in-flight flow of the
  // tenant leaves the network at this instant, and the survivors' rates
  // re-solve once at batch close (the per-engine abort_app batches nest
  // under this one). Tombstones, trace drops, and the kill report are
  // unaffected — only the solve is coalesced.
  net::Network::SolveBatch batch(*network_);

  // Abort every communicator of the app on every rank's proxy. A host crash
  // has no control-plane grace: the state vanishes now, and peers discover it
  // by their in-flight messages being dropped on arrival.
  std::vector<CommId> doomed;
  for (const auto& [id, info] : comms_) {
    if (info.app == app) doomed.push_back(info.id);
  }
  std::sort(doomed.begin(), doomed.end());
  for (CommId comm : doomed) {
    const CommInfo info = comms_.at(comm.get());
    for (GpuId gpu : info.gpus) {
      report.collectives += proxy_for(gpu).abort_communicator(comm);
    }
    comms_.erase(comm.get());
    reconfig_rounds_.erase(comm.get());
    killed_comms_.insert(comm.get());
    ++report.comms;
  }

  // Cancel the app's in-flight network sends and drop its QoS gates on every
  // transport engine in the cluster.
  for (auto& svc : services_) {
    const auto& host = cluster_.host(svc->host());
    for (std::size_t nic = 0; nic < host.nic_nodes.size(); ++nic) {
      report.sends += svc->transport(static_cast<int>(nic)).abort_app(app);
    }
  }
  return report;
}

void Fabric::set_stall_handler(std::function<void(const StallReport&)> handler) {
  context_.on_transport_stall = std::move(handler);
}

void Fabric::debug_dump(std::ostream& os) {
  os << "=== fabric dump @ t=" << loop_.now() << "s ===\n";
  os << "event loop: " << loop_.size() << " live events\n";

  os << "links (non-up only):\n";
  const net::Topology& topo = network_->topology();
  std::size_t degraded = 0;
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const LinkId id{static_cast<std::uint32_t>(l)};
    if (network_->link_state(id) == net::LinkState::kUp) continue;
    ++degraded;
    os << "  link " << l
       << (network_->link_state(id) == net::LinkState::kDown ? " DOWN"
                                                             : " DEGRADED")
       << " (capacity x" << network_->link_capacity_fraction(id) << ")\n";
  }
  if (degraded == 0) os << "  (all up)\n";

  os << "active flows:\n";
  for (FlowId f : network_->active_flows()) {
    const net::FlowSpec& spec = network_->flow_spec(f);
    os << "  flow " << f.get() << " app=" << spec.app.get()
       << " remaining=" << network_->flow_remaining(f)
       << "B rate=" << network_->flow_rate(f) << "B/s\n";
  }
  os << "allocation errors: " << network_->allocation_error_count() << "\n";

  os << "communicators:\n";
  for (const CommInfo& info : list_communicators()) {
    os << "  comm " << info.id.get() << " app=" << info.app.get() << ":";
    for (GpuId gpu : info.gpus) {
      ProxyEngine& p = proxy_for(gpu);
      os << " [gpu" << gpu.get() << " launched=" << p.last_launched(info.id)
         << " completed=" << p.last_completed(info.id)
         << " active=" << p.active_count(info.id)
         << " held=" << p.held_count(info.id)
         << (p.reconfig_in_progress(info.id) ? " reconfig" : "") << "]";
    }
    os << "\n";
  }

  os << "transport stats:\n";
  for (auto& svc : services_) {
    const auto& host = cluster_.host(svc->host());
    for (std::size_t nic = 0; nic < host.nic_nodes.size(); ++nic) {
      const TransportEngine::Stats st =
          svc->transport(static_cast<int>(nic)).stats();
      if (st.deadline_checks == 0 && st.retries == 0 && st.escalations == 0) {
        continue;
      }
      os << "  host" << svc->host().get() << "/nic" << nic
         << " checks=" << st.deadline_checks << " retries=" << st.retries
         << " escalations=" << st.escalations << "\n";
    }
  }
}

void Fabric::set_traffic_schedule(AppId app, const TrafficSchedule& schedule) {
  for (auto& svc : services_) {
    const auto& host = cluster_.host(svc->host());
    for (std::size_t nic = 0; nic < host.nic_nodes.size(); ++nic) {
      svc->transport(static_cast<int>(nic)).set_schedule(app, schedule);
    }
  }
}

void Fabric::clear_traffic_schedule(AppId app) {
  for (auto& svc : services_) {
    const auto& host = cluster_.host(svc->host());
    for (std::size_t nic = 0; nic < host.nic_nodes.size(); ++nic) {
      svc->transport(static_cast<int>(nic)).clear_schedule(app);
    }
  }
}

std::vector<TraceRecord> Fabric::trace_all() const {
  std::vector<TraceRecord> out;
  for (const auto& svc : services_) {
    for (const TraceRecord& r : svc->collect_trace()) out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const TraceRecord& a, const TraceRecord& b) {
    if (a.comm != b.comm) return a.comm < b.comm;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.rank < b.rank;
  });
  return out;
}

Fabric::LinkSample Fabric::sample_link(LinkId link) const {
  LinkSample s;
  s.state = network_->link_state(link);
  s.capacity_fraction = network_->link_capacity_fraction(link);
  s.throughput = network_->link_throughput(link);
  s.flows = network_->link_flow_count(link);
  s.bytes = network_->link_bytes(link);
  return s;
}

std::string Fabric::telemetry_snapshot() {
  std::string out;
  out.reserve(4096);
  out += "{\"time\":";
  telemetry::append_double(out, loop_.now());
  out += ",\"metrics\":";
  out += telemetry_.metrics().to_json();

  out += ",\"links\":[";
  const net::Topology& topo = network_->topology();
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const LinkSample s = sample_link(LinkId{static_cast<std::uint32_t>(l)});
    if (l > 0) out += ',';
    out += "{\"id\":" + std::to_string(l);
    out += ",\"state\":\"";
    switch (s.state) {
      case net::LinkState::kUp: out += "up"; break;
      case net::LinkState::kDegraded: out += "degraded"; break;
      case net::LinkState::kDown: out += "down"; break;
    }
    out += "\",\"capacity_fraction\":";
    telemetry::append_double(out, s.capacity_fraction);
    out += ",\"throughput\":";
    telemetry::append_double(out, s.throughput);
    out += ",\"flows\":" + std::to_string(s.flows);
    out += ",\"bytes\":";
    telemetry::append_double(out, s.bytes);
    out += '}';
  }
  out += "],\"flows\":[";
  bool first = true;
  for (FlowId f : network_->active_flows()) {
    const net::FlowSpec& spec = network_->flow_spec(f);
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(f.get());
    out += ",\"app\":" + std::to_string(spec.app.get());
    out += ",\"remaining\":" + std::to_string(network_->flow_remaining(f));
    out += ",\"rate\":";
    telemetry::append_double(out, network_->flow_rate(f));
    out += '}';
  }
  out += "],\"allocation_errors\":" +
         std::to_string(network_->allocation_error_count());

  out += ",\"comms\":[";
  first = true;
  for (const CommInfo& info : list_communicators()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(info.id.get());
    out += ",\"app\":" + std::to_string(info.app.get());
    out += ",\"nranks\":" + std::to_string(info.nranks);
    out += ",\"ranks\":[";
    for (std::size_t r = 0; r < info.gpus.size(); ++r) {
      const GpuId gpu = info.gpus[r];
      ProxyEngine& p = proxy_for(gpu);
      if (r > 0) out += ',';
      out += "{\"gpu\":" + std::to_string(gpu.get());
      out += ",\"launched\":" + std::to_string(p.last_launched(info.id));
      out += ",\"completed\":" + std::to_string(p.last_completed(info.id));
      out += ",\"active\":" + std::to_string(p.active_count(info.id));
      out += ",\"held\":" + std::to_string(p.held_count(info.id));
      out += ",\"reconfig\":";
      out += p.reconfig_in_progress(info.id) ? "true" : "false";
      out += '}';
    }
    out += "]}";
  }
  out += "],\"timeline_events\":" +
         std::to_string(telemetry_.timeline().event_count());
  out += '}';
  return out;
}

std::vector<TraceRecord> Fabric::trace(AppId app) const {
  std::vector<TraceRecord> out;
  for (const auto& svc : services_) {
    for (const TraceRecord& r : svc->collect_trace()) {
      if (r.app == app) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceRecord& a, const TraceRecord& b) {
    if (a.comm != b.comm) return a.comm < b.comm;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.rank < b.rank;
  });
  return out;
}

}  // namespace mccs::svc
