#pragma once
// Per-host MCCS service daemon: the trusted, provider-controlled process
// with access to all GPUs and NICs on the host (§3). Owns this host's
// engines — one proxy per GPU, one transport per NIC, one frontend per
// tenant application — and hands out shims to application processes.

#include <memory>
#include <unordered_map>

#include "common/ids.h"
#include "mccs/context.h"
#include "mccs/frontend_engine.h"
#include "mccs/proxy_engine.h"
#include "mccs/shim.h"
#include "mccs/transport_engine.h"

namespace mccs::svc {

class Fabric;

class Service {
 public:
  Service(ServiceContext& ctx, Fabric& fabric, HostId host);

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] HostId host() const { return host_; }

  /// Application process attach: returns the shim for (app, gpu). The GPU
  /// must live on this host.
  Shim& connect(AppId app, GpuId gpu);

  [[nodiscard]] ProxyEngine& proxy(GpuId gpu);
  [[nodiscard]] TransportEngine& transport(int nic_index);
  [[nodiscard]] FrontendEngine& frontend(AppId app);
  [[nodiscard]] Fabric& fabric() { return *fabric_; }

  /// All trace records captured by this host's proxy engines.
  [[nodiscard]] std::vector<TraceRecord> collect_trace() const;

 private:
  ServiceContext* ctx_;
  Fabric* fabric_;
  HostId host_;
  std::unordered_map<std::uint32_t, std::unique_ptr<ProxyEngine>> proxies_;
  std::vector<std::unique_ptr<TransportEngine>> transports_;
  std::unordered_map<std::uint32_t, std::unique_ptr<FrontendEngine>> frontends_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Shim>> shims_;
};

}  // namespace mccs::svc
