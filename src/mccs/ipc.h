#pragma once
// Shared-memory IPC between the shim and the service (§4.1: "communicates
// with MCCS service using shared host and GPU memory" over "the shared
// memory command queue").
//
// SpscQueue is a bounded single-producer/single-consumer ring buffer — the
// data structure the real system places in shared memory. CommandQueue
// wraps it with the timing model of the doorbell + sleeping-poller pattern:
// a push into an empty queue arms a delivery event one IPC latency later;
// when it fires, the consumer drains everything that accumulated (burst
// coalescing, exactly how a woken poller behaves). The queue is bounded:
// a tenant that overruns it gets backpressure, not unbounded service-side
// memory growth.

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/event_loop.h"

namespace mccs::svc {

/// Bounded SPSC ring buffer. Indices only ever grow; the ring wraps by
/// masking, so capacity must be a power of two.
template <class T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : buffer_(capacity) {
    MCCS_EXPECTS(capacity >= 2);
    MCCS_EXPECTS((capacity & (capacity - 1)) == 0);
  }

  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  [[nodiscard]] std::size_t size() const { return head_ - tail_; }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return size() == capacity(); }

  /// Producer side; returns false when the ring is full (backpressure).
  [[nodiscard]] bool try_push(T value) {
    if (full()) return false;
    buffer_[head_ & (capacity() - 1)] = std::move(value);
    ++head_;
    return true;
  }

  /// Consumer side.
  std::optional<T> try_pop() {
    if (empty()) return std::nullopt;
    T value = std::move(buffer_[tail_ & (capacity() - 1)]);
    ++tail_;
    return value;
  }

 private:
  std::vector<T> buffer_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

/// A latency-modelled command queue: producer pushes, consumer callback runs
/// one `latency` after the queue goes non-empty and drains in FIFO order.
template <class T>
class CommandQueue {
 public:
  using Consumer = std::function<void(T)>;

  CommandQueue(sim::EventLoop& loop, Time latency, std::size_t capacity,
               Consumer consumer)
      : loop_(&loop), latency_(latency), ring_(capacity),
        consumer_(std::move(consumer)) {
    MCCS_EXPECTS(consumer_ != nullptr);
  }

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  /// Producer entry point. Throws on overrun — the tenant outran the
  /// service; a production shim would spin-wait, which has no analogue in
  /// the virtual-time applications this repository runs.
  void push(T value) {
    MCCS_CHECK(ring_.try_push(std::move(value)),
               "IPC command queue overrun (tenant outran the service)");
    arm();
  }

  [[nodiscard]] std::size_t depth() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

 private:
  void arm() {
    if (loop_->pending(wakeup_)) return;
    // Doorbell: the consumer wakes one IPC latency after the first pending
    // command (zero latency = in-process library: deliver via the loop so
    // producers never re-enter the consumer synchronously).
    wakeup_ = loop_->schedule_after(latency_, [this] { drain(); });
  }

  void drain() {
    while (auto value = ring_.try_pop()) {
      consumer_(std::move(*value));
    }
  }

  sim::EventLoop* loop_;
  Time latency_;
  SpscQueue<T> ring_;
  Consumer consumer_;
  sim::EventLoop::Handle wakeup_;
};

}  // namespace mccs::svc
