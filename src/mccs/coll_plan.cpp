#include "mccs/coll_plan.h"

#include <algorithm>
#include <utility>

#include "collectives/compiler.h"
#include "mccs/proxy_engine.h"
#include "mccs/strategy.h"

namespace mccs::svc {
namespace {

// Byte range of (buffer_chunk, channel) within the logical work buffer.
// Blocks: AllGather/ReduceScatter have fixed per-rank blocks of `count`
// elements (num_chunks == nranks); AllReduce/Broadcast partition `count`
// elements into num_chunks near-equal pieces (rings use nranks chunks,
// trees their pipeline granularity). Each channel owns a stripe of every
// block.
PlanByteRange chunk_byte_range(coll::CollectiveKind kind, std::size_t count,
                               std::size_t esize, std::size_t num_chunks,
                               int num_channels, int channel,
                               std::size_t buffer_chunk) {
  std::size_t block_begin = 0;
  std::size_t block_count = 0;
  switch (kind) {
    case coll::CollectiveKind::kAllReduce:
    case coll::CollectiveKind::kBroadcast:
    case coll::CollectiveKind::kReduce: {
      const auto cr = coll::chunk_range(count, num_chunks, buffer_chunk);
      block_begin = cr.begin_elem;
      block_count = cr.count_elem;
      break;
    }
    case coll::CollectiveKind::kAllGather:
    case coll::CollectiveKind::kReduceScatter:
    case coll::CollectiveKind::kAllToAll:
    case coll::CollectiveKind::kGather:
    case coll::CollectiveKind::kScatter: {
      block_begin = buffer_chunk * count;
      block_count = count;
      break;
    }
  }
  const auto sub = coll::chunk_range(block_count,
                                     static_cast<std::size_t>(num_channels),
                                     static_cast<std::size_t>(channel));
  return PlanByteRange{(block_begin + sub.begin_elem) * esize,
                       sub.count_elem * esize};
}

}  // namespace

PlanKey make_plan_key(const CommStrategy& strategy, coll::CollectiveKind kind,
                      std::size_t count, coll::DataType dtype, int root) {
  return PlanKey{kind,
                 count,
                 dtype,
                 root,
                 strategy.num_channels(),
                 strategy.algorithm,
                 coll::compiler_fingerprint(strategy.tree_pipeline_chunks)};
}

std::shared_ptr<const CollPlan> build_coll_plan(
    const CommSetup& setup, const CommStrategy& strategy,
    const cluster::Cluster& cluster, coll::CollectiveKind kind,
    std::size_t count, coll::DataType dtype, int root) {
  const int n = setup.nranks;
  const int rank = setup.rank;
  const int num_channels = strategy.num_channels();
  const std::size_t esize = coll::dtype_size(dtype);
  const GpuId my_gpu = setup.gpus[static_cast<std::size_t>(rank)];
  MCCS_EXPECTS(n >= 2);
  MCCS_EXPECTS(num_channels >= 1);

  auto plan = std::make_shared<CollPlan>();
  plan->kind = kind;
  plan->count = count;
  plan->dtype = dtype;
  plan->root = root;
  plan->channels.resize(static_cast<std::size_t>(num_channels));

  // Hierarchy-pass input: the host of every rank (the locality ring orders
  // already encode hosts, but the compiler also summarises them).
  std::vector<int> host_of_rank;
  host_of_rank.reserve(setup.gpus.size());
  for (const GpuId gpu : setup.gpus) {
    host_of_rank.push_back(static_cast<int>(cluster.host_of_gpu(gpu).get()));
  }

  for (int c = 0; c < num_channels; ++c) {
    CollPlan::Channel& pc = plan->channels[static_cast<std::size_t>(c)];
    coll::CompileInput in;
    in.kind = kind;
    in.algorithm = strategy.algorithm;
    in.nranks = n;
    in.rank = rank;
    in.root = root;
    in.order = &strategy.channel_orders[static_cast<std::size_t>(c)];
    in.tree_chunks = strategy.tree_pipeline_chunks;
    in.host_of_rank = &host_of_rank;
    const coll::CompiledSchedule compiled = coll::compile_collective(in);
    pc.is_ring = compiled.is_ring;
    pc.my_position = compiled.my_position;
    const coll::ChannelSchedule& sched = compiled.schedule;
    plan->num_chunks = sched.num_chunks;

    pc.chunk_ranges.reserve(sched.num_chunks);
    for (std::size_t chunk = 0; chunk < sched.num_chunks; ++chunk) {
      pc.chunk_ranges.push_back(chunk_byte_range(
          kind, count, esize, sched.num_chunks, num_channels, c, chunk));
    }

    pc.steps.reserve(sched.steps.size());
    for (const coll::CommStep& step : sched.steps) {
      CollPlan::Step ps;
      if (step.has_send()) {
        ps.send_to = step.send_to;
        ps.send_chunk = step.send_chunk;
        ps.send_tag = step.send_tag;
        ps.send_range = pc.chunk_ranges[step.send_chunk];
        ps.send_gpu = setup.gpus[static_cast<std::size_t>(step.send_to)];
        ps.send_same_host = cluster.same_host(my_gpu, ps.send_gpu);
      }
      if (step.has_recv()) {
        MCCS_EXPECTS(step.recv_tag >= 0);
        const auto tag = static_cast<std::size_t>(step.recv_tag);
        if (tag >= pc.tag_to_slot.size()) pc.tag_to_slot.resize(tag + 1, -1);
        MCCS_CHECK(pc.tag_to_slot[tag] < 0,
                   "duplicate recv tag within a channel schedule");
        pc.tag_to_slot[tag] = static_cast<std::int32_t>(pc.recv_slots.size());
        ps.recv_slot = pc.tag_to_slot[tag];
        CollPlan::RecvSlot slot;
        slot.tag = step.recv_tag;
        slot.chunk = step.recv_chunk;
        slot.reduce = step.reduce;
        slot.range = pc.chunk_ranges[step.recv_chunk];
        pc.recv_slots.push_back(slot);
      }
      pc.steps.push_back(ps);
    }

    if (kind == coll::CollectiveKind::kReduceScatter) {
      // This rank's fully-reduced chunk (this channel's stripe) moves from
      // the scratch buffer to the user's recv buffer on channel finish. Both
      // lowerings — ring and pairwise mesh — leave it in block `rank`; the
      // ring derivation below double-checks the position arithmetic agrees.
      const auto buffer_chunk = static_cast<std::size_t>(rank);
      if (pc.is_ring) {
        const std::size_t owned =
            coll::reducescatter_owned_chunk(n, pc.my_position);
        const std::size_t mapped = coll::chunk_to_buffer_index(
            kind, strategy.channel_orders[static_cast<std::size_t>(c)], owned);
        MCCS_CHECK(mapped == buffer_chunk,
                   "reduce-scatter chunk ownership mismatch");
      }
      pc.rs_src = pc.chunk_ranges[buffer_chunk];
      const auto sub = coll::chunk_range(count,
                                         static_cast<std::size_t>(num_channels),
                                         static_cast<std::size_t>(c));
      pc.rs_dst = PlanByteRange{sub.begin_elem * esize, sub.count_elem * esize};
      MCCS_CHECK(pc.rs_src.len == pc.rs_dst.len,
                 "reduce-scatter stripe length mismatch");
    }
  }
  return plan;
}

std::shared_ptr<const CollPlan> CollPlanCache::acquire(
    std::uint64_t epoch, bool enabled, const CommSetup& setup,
    const CommStrategy& strategy, const cluster::Cluster& cluster,
    coll::CollectiveKind kind, std::size_t count, coll::DataType dtype,
    int root) {
  if (epoch != epoch_) {
    if (!plans_.empty()) invalidations().increment();
    plans_.clear();
    epoch_ = epoch;
  }
  const PlanKey key = make_plan_key(strategy, kind, count, dtype, root);
  if (enabled) {
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      hits().increment();
      return it->second;
    }
  }
  misses().increment();
  auto plan = build_coll_plan(setup, strategy, cluster, kind, count, dtype, root);
  if (enabled) plans_.emplace(key, plan);
  return plan;
}

std::shared_ptr<const CollPlan> CollPlanCache::peek(
    const CommStrategy& strategy, coll::CollectiveKind kind, std::size_t count,
    coll::DataType dtype, int root) const {
  auto it = plans_.find(make_plan_key(strategy, kind, count, dtype, root));
  return it == plans_.end() ? nullptr : it->second;
}

}  // namespace mccs::svc
