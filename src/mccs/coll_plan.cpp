#include "mccs/coll_plan.h"

#include <algorithm>
#include <utility>

#include "mccs/proxy_engine.h"
#include "mccs/strategy.h"

namespace mccs::svc {
namespace {

// Byte range of (buffer_chunk, channel) within the logical work buffer.
// Blocks: AllGather/ReduceScatter have fixed per-rank blocks of `count`
// elements (num_chunks == nranks); AllReduce/Broadcast partition `count`
// elements into num_chunks near-equal pieces (rings use nranks chunks,
// trees their pipeline granularity). Each channel owns a stripe of every
// block.
PlanByteRange chunk_byte_range(coll::CollectiveKind kind, std::size_t count,
                               std::size_t esize, std::size_t num_chunks,
                               int num_channels, int channel,
                               std::size_t buffer_chunk) {
  std::size_t block_begin = 0;
  std::size_t block_count = 0;
  switch (kind) {
    case coll::CollectiveKind::kAllReduce:
    case coll::CollectiveKind::kBroadcast:
    case coll::CollectiveKind::kReduce: {
      const auto cr = coll::chunk_range(count, num_chunks, buffer_chunk);
      block_begin = cr.begin_elem;
      block_count = cr.count_elem;
      break;
    }
    case coll::CollectiveKind::kAllGather:
    case coll::CollectiveKind::kReduceScatter:
    case coll::CollectiveKind::kAllToAll:
    case coll::CollectiveKind::kGather:
    case coll::CollectiveKind::kScatter: {
      block_begin = buffer_chunk * count;
      block_count = count;
      break;
    }
  }
  const auto sub = coll::chunk_range(block_count,
                                     static_cast<std::size_t>(num_channels),
                                     static_cast<std::size_t>(channel));
  return PlanByteRange{(block_begin + sub.begin_elem) * esize,
                       sub.count_elem * esize};
}

/// Build the per-channel schedule exactly as the pre-plan proxy engine did.
coll::ChannelSchedule build_channel_schedule(const CommStrategy& strategy,
                                             int nranks, int rank, int channel,
                                             coll::CollectiveKind kind,
                                             int root, bool* is_ring,
                                             int* my_position) {
  *is_ring = false;
  *my_position = 0;
  // Trees apply to AllReduce/Broadcast/Reduce (AllGather/ReduceScatter fall
  // back to rings: their outputs are ring-structured by construction).
  const bool use_tree = strategy.algorithm == coll::Algorithm::kTree &&
                        (kind == coll::CollectiveKind::kAllReduce ||
                         kind == coll::CollectiveKind::kBroadcast ||
                         kind == coll::CollectiveKind::kReduce);
  if (kind == coll::CollectiveKind::kAllToAll) {
    return coll::build_alltoall_schedule(nranks, rank);
  }
  if (kind == coll::CollectiveKind::kGather) {
    return coll::build_gather_schedule(nranks, rank, root);
  }
  if (kind == coll::CollectiveKind::kScatter) {
    return coll::build_scatter_schedule(nranks, rank, root);
  }
  if (use_tree) {
    switch (kind) {
      case coll::CollectiveKind::kAllReduce:
        return coll::build_tree_allreduce_schedule(
            nranks, rank, strategy.tree_pipeline_chunks);
      case coll::CollectiveKind::kBroadcast:
        return coll::build_tree_broadcast_schedule(
            nranks, rank, root, strategy.tree_pipeline_chunks);
      default:
        return coll::build_tree_reduce_schedule(nranks, rank, root,
                                                strategy.tree_pipeline_chunks);
    }
  }
  const coll::RingOrder& order =
      strategy.channel_orders[static_cast<std::size_t>(channel)];
  *is_ring = true;
  *my_position = order.position_of(rank);
  if (kind == coll::CollectiveKind::kReduce) {
    return coll::build_chain_reduce_schedule(order, rank, root);
  }
  return coll::build_ring_schedule(kind, order, rank, root);
}

}  // namespace

std::shared_ptr<const CollPlan> build_coll_plan(
    const CommSetup& setup, const CommStrategy& strategy,
    const cluster::Cluster& cluster, coll::CollectiveKind kind,
    std::size_t count, coll::DataType dtype, int root) {
  const int n = setup.nranks;
  const int rank = setup.rank;
  const int num_channels = strategy.num_channels();
  const std::size_t esize = coll::dtype_size(dtype);
  const GpuId my_gpu = setup.gpus[static_cast<std::size_t>(rank)];
  MCCS_EXPECTS(n >= 2);
  MCCS_EXPECTS(num_channels >= 1);

  auto plan = std::make_shared<CollPlan>();
  plan->kind = kind;
  plan->count = count;
  plan->dtype = dtype;
  plan->root = root;
  plan->channels.resize(static_cast<std::size_t>(num_channels));

  for (int c = 0; c < num_channels; ++c) {
    CollPlan::Channel& pc = plan->channels[static_cast<std::size_t>(c)];
    const coll::ChannelSchedule sched = build_channel_schedule(
        strategy, n, rank, c, kind, root, &pc.is_ring, &pc.my_position);
    plan->num_chunks = sched.num_chunks;

    pc.chunk_ranges.reserve(sched.num_chunks);
    for (std::size_t chunk = 0; chunk < sched.num_chunks; ++chunk) {
      pc.chunk_ranges.push_back(chunk_byte_range(
          kind, count, esize, sched.num_chunks, num_channels, c, chunk));
    }

    pc.steps.reserve(sched.steps.size());
    for (const coll::CommStep& step : sched.steps) {
      CollPlan::Step ps;
      if (step.has_send()) {
        ps.send_to = step.send_to;
        ps.send_chunk = step.send_chunk;
        ps.send_tag = step.send_tag;
        ps.send_range = pc.chunk_ranges[step.send_chunk];
        ps.send_gpu = setup.gpus[static_cast<std::size_t>(step.send_to)];
        ps.send_same_host = cluster.same_host(my_gpu, ps.send_gpu);
      }
      if (step.has_recv()) {
        MCCS_EXPECTS(step.recv_tag >= 0);
        const auto tag = static_cast<std::size_t>(step.recv_tag);
        if (tag >= pc.tag_to_slot.size()) pc.tag_to_slot.resize(tag + 1, -1);
        MCCS_CHECK(pc.tag_to_slot[tag] < 0,
                   "duplicate recv tag within a channel schedule");
        pc.tag_to_slot[tag] = static_cast<std::int32_t>(pc.recv_slots.size());
        ps.recv_slot = pc.tag_to_slot[tag];
        CollPlan::RecvSlot slot;
        slot.tag = step.recv_tag;
        slot.chunk = step.recv_chunk;
        slot.reduce = step.reduce;
        slot.range = pc.chunk_ranges[step.recv_chunk];
        pc.recv_slots.push_back(slot);
      }
      pc.steps.push_back(ps);
    }

    if (kind == coll::CollectiveKind::kReduceScatter) {
      // This rank's fully-reduced chunk (this channel's stripe) moves from
      // the scratch buffer to the user's recv buffer on channel finish.
      MCCS_CHECK(pc.is_ring, "reduce-scatter executes on rings");
      const std::size_t owned = coll::reducescatter_owned_chunk(n, pc.my_position);
      const std::size_t buffer_chunk = coll::chunk_to_buffer_index(
          kind, strategy.channel_orders[static_cast<std::size_t>(c)], owned);
      MCCS_CHECK(buffer_chunk == static_cast<std::size_t>(rank),
                 "reduce-scatter chunk ownership mismatch");
      pc.rs_src = pc.chunk_ranges[buffer_chunk];
      const auto sub = coll::chunk_range(count,
                                         static_cast<std::size_t>(num_channels),
                                         static_cast<std::size_t>(c));
      pc.rs_dst = PlanByteRange{sub.begin_elem * esize, sub.count_elem * esize};
      MCCS_CHECK(pc.rs_src.len == pc.rs_dst.len,
                 "reduce-scatter stripe length mismatch");
    }
  }
  return plan;
}

std::shared_ptr<const CollPlan> CollPlanCache::acquire(
    std::uint64_t epoch, bool enabled, const CommSetup& setup,
    const CommStrategy& strategy, const cluster::Cluster& cluster,
    coll::CollectiveKind kind, std::size_t count, coll::DataType dtype,
    int root) {
  if (epoch != epoch_) {
    if (!plans_.empty()) invalidations().increment();
    plans_.clear();
    epoch_ = epoch;
  }
  const PlanKey key{kind, count, dtype, root, strategy.num_channels()};
  if (enabled) {
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      hits().increment();
      return it->second;
    }
  }
  misses().increment();
  auto plan = build_coll_plan(setup, strategy, cluster, kind, count, dtype, root);
  if (enabled) plans_.emplace(key, plan);
  return plan;
}

std::shared_ptr<const CollPlan> CollPlanCache::peek(coll::CollectiveKind kind,
                                                    std::size_t count,
                                                    coll::DataType dtype,
                                                    int root,
                                                    int num_channels) const {
  auto it = plans_.find(PlanKey{kind, count, dtype, root, num_channels});
  return it == plans_.end() ? nullptr : it->second;
}

}  // namespace mccs::svc
