#pragma once
// Collective strategy: everything the provider controls about how a
// communicator's collectives execute — the per-channel ring orderings
// (logical level) and the explicit network route of every inter-host
// connection (physical level). This is the unit the Fig.-4 protocol swaps
// atomically at runtime.

#include <unordered_map>
#include <vector>

#include "collectives/ring.h"
#include "collectives/types.h"
#include "common/ids.h"
#include "cluster/cluster.h"

namespace mccs::svc {

struct CommStrategy {
  coll::Algorithm algorithm = coll::Algorithm::kRing;

  /// One ring ordering (over ranks) per channel. Channel c of rank r egresses
  /// through the NIC paired with rank r's GPU. Tree schedules operate in rank
  /// space directly but still split the buffer across this many channels.
  std::vector<coll::RingOrder> channel_orders;

  /// Pipeline granularity of tree algorithms (chunks per channel).
  std::size_t tree_pipeline_chunks = 8;

  /// Extension beyond the paper: when set, flow assignment also places the
  /// full pairwise mesh (AllToAll traffic) on explicit routes, not just the
  /// ring/tree edges.
  bool route_pairwise_mesh = false;

  /// Explicit route per inter-host connection, keyed by
  /// route_key(channel, sender rank, receiver rank). Missing key => ECMP.
  std::unordered_map<std::uint64_t, RouteId> routes;

  [[nodiscard]] int num_channels() const {
    return static_cast<int>(channel_orders.size());
  }

  static std::uint64_t route_key(int channel, int src_rank, int dst_rank) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(channel)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank) & 0xFFFFFF) << 24) |
           (static_cast<std::uint32_t>(dst_rank) & 0xFFFFFF);
  }

  friend bool operator==(const CommStrategy& a, const CommStrategy& b) {
    if (a.algorithm != b.algorithm) return false;
    // Plan-shaping knob: two strategies that differ only here still compile
    // different tree schedules, so they are not interchangeable.
    if (a.tree_pipeline_chunks != b.tree_pipeline_chunks) return false;
    if (a.channel_orders.size() != b.channel_orders.size()) return false;
    for (std::size_t i = 0; i < a.channel_orders.size(); ++i) {
      if (!(a.channel_orders[i] == b.channel_orders[i])) return false;
    }
    return a.routes == b.routes;
  }
};

/// Build per-channel ring orders from a base rank ordering: within every
/// maximal run of consecutive ranks living on the same host, channel c
/// rotates the run left by c, so different channels enter/exit each host
/// through different GPUs (and thus different NICs) — the standard NCCL
/// multi-channel pattern the prototype adopts.
std::vector<coll::RingOrder> make_channel_orders(
    const std::vector<int>& base_order, const std::vector<GpuId>& gpus_by_rank,
    const cluster::Cluster& cluster, int num_channels);

/// The strategy NCCL would pick with no topology knowledge (§2.2, §4.2):
/// inter-host ring follows the user-assigned rank order; as many channels as
/// the communicator has GPUs on its busiest host (one per NIC); ECMP routing.
CommStrategy nccl_default_strategy(const std::vector<GpuId>& gpus_by_rank,
                                   const cluster::Cluster& cluster);

}  // namespace mccs::svc
