#pragma once
// Strongly-typed integer identifiers (C++ Core Guidelines I.4: make
// interfaces precisely and strongly typed). A HostId cannot be passed where
// a GpuId is expected.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mccs {

template <class Tag>
struct Id {
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  underlying_type value = kInvalid;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr underlying_type get() const { return value; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << Tag::prefix() << id.value;
  }
};

// Tags. Each carries a short prefix used when logging.
struct HostTag { static constexpr const char* prefix() { return "host"; } };
struct GpuTag { static constexpr const char* prefix() { return "gpu"; } };
struct NicTag { static constexpr const char* prefix() { return "nic"; } };
struct SwitchTag { static constexpr const char* prefix() { return "sw"; } };
struct LinkTag { static constexpr const char* prefix() { return "link"; } };
struct NodeTag { static constexpr const char* prefix() { return "node"; } };
struct FlowTag { static constexpr const char* prefix() { return "flow"; } };
struct RouteTag { static constexpr const char* prefix() { return "route"; } };
struct AppTag { static constexpr const char* prefix() { return "app"; } };
struct CommTag { static constexpr const char* prefix() { return "comm"; } };
struct JobTag { static constexpr const char* prefix() { return "job"; } };
struct RackTag { static constexpr const char* prefix() { return "rack"; } };
struct PodTag { static constexpr const char* prefix() { return "pod"; } };
struct MemTag { static constexpr const char* prefix() { return "mem"; } };
struct StreamTag { static constexpr const char* prefix() { return "stream"; } };
struct EventTag { static constexpr const char* prefix() { return "event"; } };
struct ChannelTag { static constexpr const char* prefix() { return "chan"; } };

using HostId = Id<HostTag>;
using GpuId = Id<GpuTag>;        ///< Cluster-global GPU index.
using NicId = Id<NicTag>;        ///< Cluster-global NIC index.
using SwitchId = Id<SwitchTag>;
using LinkId = Id<LinkTag>;
using NodeId = Id<NodeTag>;      ///< Topology graph node (host or switch).
using FlowId = Id<FlowTag>;
using RouteId = Id<RouteTag>;    ///< Explicit path selector (UDP-sport analogue).
using AppId = Id<AppTag>;        ///< Tenant application.
using CommId = Id<CommTag>;      ///< Communicator.
using JobId = Id<JobTag>;
using RackId = Id<RackTag>;
using PodId = Id<PodTag>;
using MemId = Id<MemTag>;        ///< Device memory allocation.
using StreamId = Id<StreamTag>;
using EventId = Id<EventTag>;
using ChannelId = Id<ChannelTag>;  ///< Ring/channel index inside a communicator.

}  // namespace mccs

namespace std {
template <class Tag>
struct hash<mccs::Id<Tag>> {
  size_t operator()(mccs::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
