#pragma once
// Small statistics helpers shared by benches and tests: mean, percentiles,
// CDF extraction.
//
// The CDF-heavy fig benches read many percentiles off the same sample set;
// the by-value overloads below copy and re-sort the whole vector per call.
// Hot callers should sort once with `sort_samples` and use the `_sorted`
// span variants, which are allocation- and copy-free. The by-value forms are
// kept as convenience wrappers for one-shot use.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "common/check.h"

namespace mccs {

inline double mean(std::span<const double> xs) {
  MCCS_EXPECTS(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

/// Sort a sample vector in place, readying it for the `_sorted` variants.
inline void sort_samples(std::vector<double>& xs) {
  std::sort(xs.begin(), xs.end());
}

/// Percentile with linear interpolation over an ALREADY SORTED sample span,
/// p in [0, 100]. No copy, no allocation.
inline double percentile_sorted(std::span<const double> xs, double p) {
  MCCS_EXPECTS(!xs.empty());
  MCCS_EXPECTS(p >= 0.0 && p <= 100.0);
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// One-shot percentile: copies and sorts. Prefer sort_samples +
/// percentile_sorted when reading several percentiles from one sample set.
inline double percentile(std::vector<double> xs, double p) {
  sort_samples(xs);
  return percentile_sorted(xs, p);
}

/// Generic quantile over an ALREADY SORTED span, q in [0, 1]. Same linear
/// interpolation as percentile_sorted (quantile_sorted(xs, q) ==
/// percentile_sorted(xs, 100 q)); the unit-interval form reads better when
/// the q itself is computed (tail sweeps, q = 1 - 10^-k ladders).
inline double quantile_sorted(std::span<const double> xs, double q) {
  MCCS_EXPECTS(!xs.empty());
  MCCS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (xs.size() == 1) return xs.front();
  // Compute the rank directly from q: routing through percentile_sorted(xs,
  // q * 100) lands in a different interpolation cell whenever q * 100 is not
  // exact (q = 0.29 -> p = 28.999999999999996, rank floor off by one).
  const double rank = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// One-shot quantile: copies and sorts.
inline double quantile(std::vector<double> xs, double q) {
  sort_samples(xs);
  return quantile_sorted(xs, q);
}

/// The tail trio the latency-facing benches headline. p999 needs >= 1000
/// samples before it reads past p99's neighbourhood — with fewer it still
/// interpolates correctly, just close to the max; callers decide sample
/// counts.
struct TailSummary {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Tail summary over an ALREADY SORTED span.
inline TailSummary tail_summary_sorted(std::span<const double> xs) {
  return TailSummary{percentile_sorted(xs, 50.0), percentile_sorted(xs, 99.0),
                     percentile_sorted(xs, 99.9)};
}

/// One-shot tail summary: copies and sorts.
inline TailSummary tail_summary(std::vector<double> xs) {
  sort_samples(xs);
  return tail_summary_sorted(xs);
}

struct CdfPoint {
  double value;
  double cumulative_fraction;
};

/// Empirical CDF points over an ALREADY SORTED sample span.
inline std::vector<CdfPoint> empirical_cdf_sorted(std::span<const double> xs) {
  MCCS_EXPECTS(!xs.empty());
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back({xs[i], static_cast<double>(i + 1) / static_cast<double>(xs.size())});
  }
  return out;
}

/// One-shot empirical CDF: copies and sorts. Prefer sort_samples +
/// empirical_cdf_sorted on hot paths.
inline std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  sort_samples(xs);
  return empirical_cdf_sorted(xs);
}

}  // namespace mccs
