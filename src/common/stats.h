#pragma once
// Small statistics helpers shared by benches and tests: mean, percentiles,
// CDF extraction.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace mccs {

inline double mean(const std::vector<double>& xs) {
  MCCS_EXPECTS(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

/// Percentile with linear interpolation, p in [0, 100].
inline double percentile(std::vector<double> xs, double p) {
  MCCS_EXPECTS(!xs.empty());
  MCCS_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

struct CdfPoint {
  double value;
  double cumulative_fraction;
};

/// Empirical CDF points (sorted values with cumulative fraction).
inline std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  MCCS_EXPECTS(!xs.empty());
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back({xs[i], static_cast<double>(i + 1) / static_cast<double>(xs.size())});
  }
  return out;
}

}  // namespace mccs
