#pragma once
// Minimal leveled logging. Silent by default so tests and benches stay
// clean; enable with Logger::set_level. Not thread-safe by design: the whole
// system runs on one deterministic event-loop thread.

#include <iostream>
#include <sstream>
#include <string>

namespace mccs {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kOff;
    return lvl;
  }
  static void set_level(LogLevel lvl) { level() = lvl; }
  static bool enabled(LogLevel lvl) { return lvl >= level(); }
};

namespace detail {
inline const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    default: return "?";
  }
}
}  // namespace detail

}  // namespace mccs

#define MCCS_LOG(lvl, msg)                                                   \
  do {                                                                       \
    if (::mccs::Logger::enabled(lvl)) {                                      \
      std::ostringstream os_;                                                \
      os_ << "[" << ::mccs::detail::level_name(lvl) << "] " << msg << "\n";  \
      std::cerr << os_.str();                                                \
    }                                                                        \
  } while (0)

#define MCCS_TRACE(msg) MCCS_LOG(::mccs::LogLevel::kTrace, msg)
#define MCCS_DEBUG(msg) MCCS_LOG(::mccs::LogLevel::kDebug, msg)
#define MCCS_INFO(msg) MCCS_LOG(::mccs::LogLevel::kInfo, msg)
#define MCCS_WARN(msg) MCCS_LOG(::mccs::LogLevel::kWarn, msg)
