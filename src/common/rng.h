#pragma once
// Deterministic random number generation. Every stochastic component takes an
// explicit Rng (or seed) so whole experiments replay bit-identically; there
// is no global RNG state (Core Guidelines I.2).

#include <cstdint>
#include <random>

#include "common/check.h"

namespace mccs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    MCCS_EXPECTS(n > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Exponential with the given mean (for Poisson inter-arrival times).
  double exponential(double mean) {
    MCCS_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal distribution.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <class Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-job / per-trial RNGs).
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mccs
