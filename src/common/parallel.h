#pragma once
// Deterministic fork-join task pool shared by every parallel layer (netsim
// component solves, sharded reductions, FFA route scoring, seed sweeps).
//
// Design constraints, in priority order:
//
//  1. *Determinism.* Every parallel_for splits [0, n) into fixed grain-sized
//     chunks whose boundaries depend only on (n, grain) — never on the thread
//     count or on scheduling. Callers write results into disjoint per-index
//     (or per-chunk) slots and combine them on the calling thread afterwards,
//     in index order. Under that contract `threads = N` is byte-identical to
//     `threads = 1` for any N: the same floating-point operations run on the
//     same operands, only on different threads.
//  2. *Zero cost when off.* `threads = 1` (or a range below one grain) never
//     constructs the pool: the chunks run inline on the caller, preserving
//     the exact pre-pool single-threaded behaviour with no synchronisation.
//  3. *Cheap dispatch.* Idle workers spin briefly on an atomic epoch before
//     blocking on a condvar, so a dispatch that follows another closely pays
//     a cache-line read rather than a futex wakeup. Chunk claiming is
//     mutex-based: a claim costs tens of nanoseconds, which is noise at the
//     intended grain (a max-min component solve, a 256 KiB reduce shard, a
//     whole simulated seed).
//
// Thread count resolution: ParallelOptions::threads > 0 wins; otherwise the
// MCCS_THREADS environment variable; otherwise std::thread::
// hardware_concurrency(). The process-wide default pool is reachable through
// the free functions `parallel_for` / `parallel_invoke`; tests and benches
// may re-shape it with `set_threads` (e.g. to compare threads=1 vs threads=8
// in one process — see tests/test_parallel.cpp).
//
// Nested parallelism is deliberately flattened: a parallel_for issued from
// inside a pool task (or re-entrantly from a task body on the caller) runs
// its chunks inline on the issuing thread. The outer loop already owns the
// cores; nesting would only add dispatch cost and deadlock risk.

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <utility>

namespace mccs::par {

/// Non-owning callable reference (the pool never stores callables beyond the
/// lifetime of the parallel_for call that supplied them, so no allocation or
/// type erasure beyond one pointer pair is needed).
template <class Sig>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

struct ParallelOptions {
  /// Total concurrency including the calling thread. 0 = resolve from the
  /// MCCS_THREADS environment variable, falling back to
  /// hardware_concurrency(). 1 = run everything inline (no pool).
  int threads = 0;
};

/// Fork-join pool: `threads - 1` workers plus the calling thread. A single
/// job is live at a time (the calling thread blocks until its job drains),
/// which is all fork-join needs and keeps the claim path trivial.
class Pool {
 public:
  explicit Pool(ParallelOptions options = {});
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  /// Run body(begin, end) over grain-sized chunks of [0, n): boundaries are
  /// exact multiples of `grain` regardless of thread count (the determinism
  /// contract), and every chunk runs exactly once. Blocks until all chunks
  /// finished. The body must not touch shared mutable state except disjoint
  /// per-index output slots.
  void parallel_for(std::size_t n, std::size_t grain,
                    FunctionRef<void(std::size_t, std::size_t)> body);

  /// Run each task once, concurrently where possible; blocks until all done.
  void parallel_invoke(std::initializer_list<FunctionRef<void()>> tasks);

  /// Reconfigure the worker count. Must not be called while a job is live
  /// (i.e. only between parallel regions). Existing workers are joined.
  void set_threads(int threads);

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// Thread count an options struct resolves to (env / hardware fallback).
[[nodiscard]] int resolve_threads(const ParallelOptions& options);

/// The process-wide default pool (lazily constructed from MCCS_THREADS).
Pool& default_pool();

/// Default pool's concurrency; 1 means every parallel_* call runs inline.
[[nodiscard]] int thread_count();

/// Re-shape the default pool (tests/benches); threads <= 0 restores the
/// MCCS_THREADS / hardware default.
void set_threads(int threads);

inline void parallel_for(std::size_t n, std::size_t grain,
                         FunctionRef<void(std::size_t, std::size_t)> body) {
  default_pool().parallel_for(n, grain, body);
}

inline void parallel_invoke(std::initializer_list<FunctionRef<void()>> tasks) {
  default_pool().parallel_invoke(tasks);
}

}  // namespace mccs::par
