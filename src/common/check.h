#pragma once
// Contract checking for MCCS. Follows C++ Core Guidelines I.5/I.7: state
// preconditions and postconditions, and fail loudly when they are violated.
//
// MCCS_EXPECTS(cond)  - precondition; throws mccs::ContractViolation.
// MCCS_ENSURES(cond)  - postcondition; throws mccs::ContractViolation.
// MCCS_CHECK(cond, msg) - invariant with a custom message.
// MCCS_ASSERT(cond)   - cheap internal invariant (hot paths); no message.
//
// Contracts are always on: this library is a research artifact whose tests
// rely on deterministic, observable failure, so we do not compile them out
// in release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace mccs {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace mccs

#define MCCS_EXPECTS(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mccs::detail::contract_fail("precondition", #cond, __FILE__,        \
                                    __LINE__, "");                          \
  } while (0)

#define MCCS_ENSURES(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mccs::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                    __LINE__, "");                          \
  } while (0)

#define MCCS_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mccs::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                    (msg));                                 \
  } while (0)

#define MCCS_ASSERT(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mccs::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                    "");                                    \
  } while (0)
