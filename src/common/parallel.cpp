#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace mccs::par {
namespace {

/// Depth of parallel regions on this thread: > 0 inside a worker task or a
/// live parallel_for body, where further parallel calls run inline.
thread_local int t_in_parallel = 0;

/// Idle-spin budget before a worker blocks on the condvar. A pause-loop
/// iteration is a few ns, so this bounds the spin phase to a handful of
/// microseconds — about the cost of the futex wakeup it avoids.
constexpr int kSpinIters = 2000;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

int env_threads() {
  static const int cached = [] {
    if (const char* env = std::getenv("MCCS_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return std::min(v, 256);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(std::min(hw, 256u));
  }();
  return cached;
}

}  // namespace

int resolve_threads(const ParallelOptions& options) {
  if (options.threads > 0) return std::min(options.threads, 256);
  return env_threads();
}

struct Pool::Impl {
  /// The single live fork-join job. All non-atomic fields are guarded by
  /// `mu`; the body itself runs outside the lock.
  struct Job {
    const FunctionRef<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t num_chunks = 0;
    std::size_t next_chunk = 0;
    std::size_t done_chunks = 0;
  };

  std::mutex mu;
  std::condition_variable work_cv;  ///< workers sleep here
  std::condition_variable done_cv;  ///< the publishing caller sleeps here
  /// Bumped on every publish (and on stop); the target of the idle spin.
  std::atomic<std::uint64_t> epoch{0};
  bool stop = false;    ///< guarded by mu
  Job* job = nullptr;   ///< guarded by mu; null = no live job
  std::vector<std::thread> workers;

  /// Claim and run chunks of the live job until none remain. Entered and
  /// exited with `lk` held. The thread whose increment completes the job
  /// clears `job` (quiescing it: nobody dereferences the Job afterwards)
  /// and wakes the caller.
  void run_chunks(std::unique_lock<std::mutex>& lk) {
    while (job != nullptr && job->next_chunk < job->num_chunks) {
      Job* j = job;
      const std::size_t c = j->next_chunk++;
      lk.unlock();
      const std::size_t begin = c * j->grain;
      const std::size_t end = std::min(j->n, begin + j->grain);
      (*j->body)(begin, end);
      lk.lock();
      if (++j->done_chunks == j->num_chunks) {
        job = nullptr;
        done_cv.notify_all();
      }
    }
  }

  void worker_main() {
    t_in_parallel = 1;  // parallel calls from task bodies run inline
    std::uint64_t seen = epoch.load(std::memory_order_acquire);
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      // Wait for the next publish (or stop). The job pointer alone is NOT a
      // wait condition: a live job whose chunks are all claimed but not yet
      // retired must not be polled — the claimants still need `mu` to finish,
      // and a poll loop here would hold it forever.
      while (!stop && epoch.load(std::memory_order_relaxed) == seen) {
        // Hybrid idle wait: spin on the epoch outside the lock first, so a
        // dispatch arriving shortly after the previous one is picked up for
        // the price of a cache-line read instead of a futex round-trip.
        lk.unlock();
        bool woke = false;
        for (int i = 0; i < kSpinIters; ++i) {
          if (epoch.load(std::memory_order_acquire) != seen) {
            woke = true;
            break;
          }
          cpu_relax();
        }
        lk.lock();
        if (!woke && !stop &&
            epoch.load(std::memory_order_relaxed) == seen) {
          work_cv.wait(lk, [this, seen] {
            return stop || epoch.load(std::memory_order_relaxed) != seen;
          });
        }
      }
      if (stop) return;
      seen = epoch.load(std::memory_order_relaxed);
      run_chunks(lk);
    }
  }

  void spawn(int count) {
    workers.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      workers.emplace_back([this] { worker_main(); });
    }
  }

  void join_workers() {
    {
      std::lock_guard<std::mutex> lk(mu);
      MCCS_CHECK(job == nullptr, "Pool reconfigured inside a parallel region");
      stop = true;
      epoch.fetch_add(1, std::memory_order_release);
    }
    work_cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = false;
    }
  }
};

Pool::Pool(ParallelOptions options)
    : impl_(new Impl), threads_(resolve_threads(options)) {}

Pool::~Pool() {
  impl_->join_workers();
  delete impl_;
}

void Pool::set_threads(int threads) {
  impl_->join_workers();
  threads_ = threads > 0 ? std::min(threads, 256)
                         : resolve_threads(ParallelOptions{});
}

void Pool::parallel_for(std::size_t n, std::size_t grain,
                        FunctionRef<void(std::size_t, std::size_t)> body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t num_chunks = (n + grain - 1) / grain;

  // Inline path: single-threaded configuration, a range that fits one chunk,
  // or a nested call. Runs the identical chunk decomposition on this thread —
  // bit-identical work, zero synchronisation, and no pool startup.
  if (threads_ <= 1 || num_chunks <= 1 || t_in_parallel > 0) {
    ++t_in_parallel;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * grain;
      body(begin, std::min(n, begin + grain));
    }
    --t_in_parallel;
    return;
  }

  // Lazy worker startup: a process that never leaves the inline path never
  // pays thread creation.
  if (impl_->workers.empty()) impl_->spawn(threads_ - 1);

  Impl::Job j;
  j.body = &body;
  j.n = n;
  j.grain = grain;
  j.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    MCCS_CHECK(impl_->job == nullptr, "parallel region already live");
    impl_->job = &j;
    impl_->epoch.fetch_add(1, std::memory_order_release);
  }
  impl_->work_cv.notify_all();

  ++t_in_parallel;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->run_chunks(lk);  // the caller is a full participant
    impl_->done_cv.wait(lk, [&j] { return j.done_chunks == j.num_chunks; });
  }
  --t_in_parallel;
}

void Pool::parallel_invoke(std::initializer_list<FunctionRef<void()>> tasks) {
  const FunctionRef<void()>* arr = tasks.begin();
  parallel_for(tasks.size(), 1, [arr](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) arr[i]();
  });
}

Pool& default_pool() {
  static Pool pool;
  return pool;
}

int thread_count() { return default_pool().threads(); }

void set_threads(int threads) { default_pool().set_threads(threads); }

}  // namespace mccs::par
