#pragma once
// Units used throughout the simulator and service.
//
// Time is virtual simulation time in seconds (double); bandwidth is bytes per
// second; data sizes are bytes. Helper functions make call sites read like
// the paper ("100 Gbps links", "512 MB AllReduce", "50 us IPC latency").

#include <cstdint>

namespace mccs {

/// Virtual simulation time, in seconds.
using Time = double;
/// Data size in bytes.
using Bytes = std::uint64_t;
/// Bandwidth in bytes per second.
using Bandwidth = double;

constexpr Time kTimeInfinity = 1e30;

// --- data sizes ------------------------------------------------------------
constexpr Bytes operator""_B(unsigned long long v) { return v; }
constexpr Bytes operator""_KB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator""_MB(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr Bytes operator""_GB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

// --- time ------------------------------------------------------------------
constexpr Time seconds(double v) { return v; }
constexpr Time millis(double v) { return v * 1e-3; }
constexpr Time micros(double v) { return v * 1e-6; }
constexpr Time nanos(double v) { return v * 1e-9; }

// --- bandwidth ---------------------------------------------------------------
/// Network-style gigabits per second -> bytes per second.
constexpr Bandwidth gbps(double v) { return v * 1e9 / 8.0; }
/// GPU-style gigabytes per second -> bytes per second.
constexpr Bandwidth gibytes_per_sec(double v) { return v * 1024.0 * 1024.0 * 1024.0; }

/// Convert bytes/second to the "GB/s" the paper plots (power-of-two GiB).
constexpr double to_gibps(Bandwidth b) { return b / (1024.0 * 1024.0 * 1024.0); }

}  // namespace mccs
