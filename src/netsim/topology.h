#pragma once
// Datacenter topology graph: hosts and switches connected by directed links
// with fixed capacities. Rack / pod labels on hosts drive the locality-aware
// policies; switch tiers (leaf / spine) exist so benches can model
// oversubscribed Clos fabrics like the paper's testbed (oversubscription 2)
// and the 768-GPU simulation fabric.

#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace mccs::net {

enum class NodeKind { kHost, kLeafSwitch, kSpineSwitch, kGenericSwitch };

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kGenericSwitch;
  std::string name;
  // Locality labels; only meaningful for hosts.
  RackId rack;
  PodId pod;
};

struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  Bandwidth capacity = 0.0;
  Time propagation_delay = 0.0;
};

/// Immutable once built; the Network and Routing layers hold const references.
class Topology {
 public:
  /// Pre-size the node/link stores. Optional — builders constructing 32k-GPU
  /// fabrics call this so construction does not rehash/regrow repeatedly.
  void reserve(std::size_t nodes, std::size_t links) {
    nodes_.reserve(nodes);
    out_links_.reserve(nodes);
    in_links_.reserve(nodes);
    links_.reserve(links);
    link_index_.reserve(links);
  }

  NodeId add_host(std::string name, RackId rack = RackId{}, PodId pod = PodId{}) {
    return add_node(NodeKind::kHost, std::move(name), rack, pod);
  }

  NodeId add_switch(NodeKind kind, std::string name) {
    MCCS_EXPECTS(kind != NodeKind::kHost);
    return add_node(kind, std::move(name), RackId{}, PodId{});
  }

  /// Add a unidirectional link.
  LinkId add_link(NodeId src, NodeId dst, Bandwidth capacity,
                  Time propagation_delay = micros(1)) {
    MCCS_EXPECTS(src.get() < nodes_.size() && dst.get() < nodes_.size());
    MCCS_EXPECTS(capacity > 0.0);
    const LinkId id{static_cast<std::uint32_t>(links_.size())};
    links_.push_back(Link{id, src, dst, capacity, propagation_delay});
    out_links_[src.get()].push_back(id);
    in_links_[dst.get()].push_back(id);
    link_index_[key(src, dst)] = id;
    return id;
  }

  /// Add a full-duplex link (two unidirectional links); returns {fwd, rev}.
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b, Bandwidth capacity,
                                            Time propagation_delay = micros(1)) {
    return {add_link(a, b, capacity, propagation_delay),
            add_link(b, a, capacity, propagation_delay)};
  }

  [[nodiscard]] const Node& node(NodeId id) const {
    MCCS_EXPECTS(id.get() < nodes_.size());
    return nodes_[id.get()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    MCCS_EXPECTS(id.get() < links_.size());
    return links_[id.get()];
  }
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const {
    MCCS_EXPECTS(id.get() < out_links_.size());
    return out_links_[id.get()];
  }
  [[nodiscard]] const std::vector<LinkId>& in_links(NodeId id) const {
    MCCS_EXPECTS(id.get() < in_links_.size());
    return in_links_[id.get()];
  }

  /// Link from src to dst, if one exists.
  [[nodiscard]] LinkId find_link(NodeId src, NodeId dst) const {
    auto it = link_index_.find(key(src, dst));
    return it == link_index_.end() ? LinkId{} : it->second;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] std::vector<NodeId> hosts() const {
    std::vector<NodeId> out;
    for (const Node& n : nodes_) {
      if (n.kind == NodeKind::kHost) out.push_back(n.id);
    }
    return out;
  }

 private:
  NodeId add_node(NodeKind kind, std::string name, RackId rack, PodId pod) {
    const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
    nodes_.push_back(Node{id, kind, std::move(name), rack, pod});
    out_links_.emplace_back();
    in_links_.emplace_back();
    return id;
  }

  static std::uint64_t key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src.get()) << 32) | dst.get();
  }

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
  std::unordered_map<std::uint64_t, LinkId> link_index_;
};

}  // namespace mccs::net
