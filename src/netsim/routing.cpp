#include "netsim/routing.h"

#include <algorithm>
#include <limits>

namespace mccs::net {
namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

}  // namespace

// All shortest paths via bidirectional layered BFS + a DFS over the induced
// shortest-path DAG.
//
// Forward layers grow from src (over out-links) and backward layers from dst
// (over in-links), always expanding the smaller frontier, until the layers
// account for the full shortest distance D (first meet with F + R >= D).
// Per-pair cost is therefore proportional to the two meeting frontiers — on
// a 32k-endpoint Clos a few hundred links — instead of one full-graph BFS
// (~100k links), which is what makes cold-cache path resolution viable when
// a scale bench starts tens of thousands of distinct flows.
//
// Distance labels are exact under the host-transit rule (hosts forward only
// as endpoints): neither side expands an intermediate host, and a meet at an
// intermediate host is ignored — such a meet would certify a walk that
// transits the host. For the optimal path P this loses nothing: P's interior
// nodes are switches, and P[i] has fdist exactly i and rdist exactly D-i (a
// smaller label would compose into a shorter valid path), so P is detected
// at P[F] the moment both sides cover it.
//
// The DFS then walks links u->v accepting v at depth d iff the labels prove
// the prefix (d <= F: fdist(v) == d) and the suffix (d >= D-R:
// rdist(v) == D-d). F + R >= D guarantees every depth is covered by at least
// one side, so every branch that survives into the suffix region reaches dst
// at depth exactly D; dead ends are confined to the (small) prefix region.
const std::vector<Path>& Routing::paths(NodeId src, NodeId dst) const {
  MCCS_EXPECTS(src != dst);
  const auto k = key(src, dst);
  auto it = cache_.find(k);
  if (it != cache_.end()) return it->second;

  const std::size_t n = topo_->node_count();
  fwd_.dist.resize(n);
  fwd_.epoch.resize(n, 0);
  rev_.dist.resize(n);
  rev_.epoch.resize(n, 0);
  ++fwd_.current;
  ++rev_.current;
  const auto fdist = [this](NodeId v) {
    return fwd_.epoch[v.get()] == fwd_.current ? fwd_.dist[v.get()] : kUnreached;
  };
  const auto rdist = [this](NodeId v) {
    return rev_.epoch[v.get()] == rev_.current ? rev_.dist[v.get()] : kUnreached;
  };

  fwd_.queue.clear();
  fwd_.queue.push_back(src);
  fwd_.dist[src.get()] = 0;
  fwd_.epoch[src.get()] = fwd_.current;
  rev_.queue.clear();
  rev_.queue.push_back(dst);
  rev_.dist[dst.get()] = 0;
  rev_.epoch[dst.get()] = rev_.current;

  std::uint32_t F = 0;  // completed forward depth
  std::uint32_t R = 0;  // completed backward depth
  std::size_t fwd_lo = 0, fwd_hi = 1;  // current layer within fwd_.queue
  std::size_t rev_lo = 0, rev_hi = 1;
  std::uint32_t D = kUnreached;

  // A meet certifies a valid src->v->dst path only when v may be an interior
  // hop (a switch) or is an endpoint of the pair itself.
  const auto meet_ok = [this, dst](NodeId v) {
    return v == dst || topo_->node(v).kind != NodeKind::kHost;
  };

  while (D > F + R || D == kUnreached) {
    const std::size_t fsz = fwd_hi - fwd_lo;
    const std::size_t rsz = rev_hi - rev_lo;
    if (fsz == 0 && rsz == 0) break;
    if (rsz == 0 || (fsz != 0 && fsz <= rsz)) {
      for (std::size_t i = fwd_lo; i < fwd_hi; ++i) {
        const NodeId u = fwd_.queue[i];
        if (u != src && topo_->node(u).kind == NodeKind::kHost) continue;
        for (LinkId lid : topo_->out_links(u)) {
          const NodeId v = topo_->link(lid).dst;
          if (fwd_.epoch[v.get()] == fwd_.current) continue;
          fwd_.epoch[v.get()] = fwd_.current;
          fwd_.dist[v.get()] = F + 1;
          fwd_.queue.push_back(v);
          const std::uint32_t rv = rdist(v);
          if (rv != kUnreached && meet_ok(v)) D = std::min(D, F + 1 + rv);
        }
      }
      fwd_lo = fwd_hi;
      fwd_hi = fwd_.queue.size();
      ++F;
    } else {
      for (std::size_t i = rev_lo; i < rev_hi; ++i) {
        const NodeId w = rev_.queue[i];
        if (w != dst && topo_->node(w).kind == NodeKind::kHost) continue;
        for (LinkId lid : topo_->in_links(w)) {
          const NodeId v = topo_->link(lid).src;
          if (rev_.epoch[v.get()] == rev_.current) continue;
          rev_.epoch[v.get()] = rev_.current;
          rev_.dist[v.get()] = R + 1;
          rev_.queue.push_back(v);
          const std::uint32_t fv = fdist(v);
          if (fv != kUnreached && (v == src || meet_ok(v))) {
            D = std::min(D, fv + R + 1);
          }
        }
      }
      rev_lo = rev_hi;
      rev_hi = rev_.queue.size();
      ++R;
    }
  }
  MCCS_CHECK(D != kUnreached, "destination unreachable");

  // Iterative DFS over the label-certified shortest-path DAG.
  std::vector<Path> result;
  Path prefix;
  struct Frame {
    NodeId node;
    std::uint32_t next_out = 0;  // index into out_links(node)
  };
  std::vector<Frame> stack{{src, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.node == dst) {
      result.push_back(prefix);
      stack.pop_back();
      if (!prefix.empty()) prefix.pop_back();
      continue;
    }
    const bool forwards =
        (f.node == src) || topo_->node(f.node).kind != NodeKind::kHost;
    if (!forwards) {  // a path may not transit another host
      stack.pop_back();
      if (!prefix.empty()) prefix.pop_back();
      continue;
    }
    const auto du = static_cast<std::uint32_t>(prefix.size());
    const auto& outs = topo_->out_links(f.node);
    bool descended = false;
    while (f.next_out < outs.size()) {
      const LinkId lid = outs[f.next_out++];
      const NodeId v = topo_->link(lid).dst;
      const std::uint32_t d = du + 1;
      if (d <= F && fdist(v) != d) continue;
      if (d + R >= D && rdist(v) != D - d) continue;
      prefix.push_back(lid);
      stack.push_back(Frame{v, 0});
      descended = true;
      break;
    }
    if (!descended && f.next_out >= outs.size()) {
      stack.pop_back();
      if (!prefix.empty()) prefix.pop_back();
    }
  }
  MCCS_ENSURES(!result.empty());
  // Deterministic order: lexicographic by link ids (enumeration already is,
  // since out_links are in insertion order, but sort defensively so the
  // meaning of RouteId never depends on traversal details).
  std::sort(result.begin(), result.end());
  return cache_.emplace(k, std::move(result)).first->second;
}

}  // namespace mccs::net
