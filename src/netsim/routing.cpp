#include "netsim/routing.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace mccs::net {
namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

// BFS from src producing hop distances; switches forward, hosts do not
// (a path may not transit another host).
std::vector<std::uint32_t> bfs_distances(const Topology& topo, NodeId src) {
  std::vector<std::uint32_t> dist(topo.node_count(), kUnreached);
  std::deque<NodeId> frontier{src};
  dist[src.get()] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const bool forwards = (u == src) || topo.node(u).kind != NodeKind::kHost;
    if (!forwards) continue;
    for (LinkId lid : topo.out_links(u)) {
      const NodeId v = topo.link(lid).dst;
      if (dist[v.get()] == kUnreached) {
        dist[v.get()] = dist[u.get()] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

// Depth-first enumeration of all shortest paths using the distance labels:
// a link (u -> v) lies on a shortest path iff dist[v] == dist[u] + 1.
void enumerate(const Topology& topo, const std::vector<std::uint32_t>& dist,
               NodeId u, NodeId dst, Path& prefix, std::vector<Path>& out) {
  if (u == dst) {
    out.push_back(prefix);
    return;
  }
  const bool forwards = prefix.empty() || topo.node(u).kind != NodeKind::kHost;
  if (!forwards) return;
  for (LinkId lid : topo.out_links(u)) {
    const Link& l = topo.link(lid);
    if (dist[l.dst.get()] == dist[u.get()] + 1 &&
        dist[dst.get()] != kUnreached &&
        dist[u.get()] + 1 <= dist[dst.get()]) {
      prefix.push_back(lid);
      enumerate(topo, dist, l.dst, dst, prefix, out);
      prefix.pop_back();
    }
  }
}

}  // namespace

const std::vector<Path>& Routing::paths(NodeId src, NodeId dst) const {
  MCCS_EXPECTS(src != dst);
  const auto k = key(src, dst);
  auto it = cache_.find(k);
  if (it != cache_.end()) return it->second;

  const auto dist = bfs_distances(*topo_, src);
  MCCS_CHECK(dist[dst.get()] != kUnreached, "destination unreachable");

  std::vector<Path> result;
  Path prefix;
  enumerate(*topo_, dist, src, dst, prefix, result);
  MCCS_ENSURES(!result.empty());
  // Deterministic order: lexicographic by link ids (enumeration already is,
  // since out_links are in insertion order, but sort defensively so the
  // meaning of RouteId never depends on traversal details).
  std::sort(result.begin(), result.end());
  return cache_.emplace(k, std::move(result)).first->second;
}

}  // namespace mccs::net
