#include "netsim/network.h"

#include <algorithm>
#include <cmath>

namespace mccs::net {
namespace {

constexpr double kRateEpsilon = 1e-9;  // bytes/s below which a rate is "zero"

struct AllocFlow {
  std::uint32_t id;
  const Path* path;
  double weight;
  Bandwidth cap;
  Bandwidth rate = 0.0;
  bool fixed = false;
};

/// Weighted max-min fair allocation with per-flow caps (progressive filling).
/// `residual` is indexed by link id and is consumed in place.
void max_min_allocate(std::vector<AllocFlow>& flows, std::vector<Bandwidth>& residual) {
  if (flows.empty()) return;

  // Per-link unfixed weight sums.
  std::vector<double> weight_on_link(residual.size(), 0.0);
  for (const AllocFlow& f : flows) {
    for (LinkId l : *f.path) weight_on_link[l.get()] += f.weight;
  }

  std::size_t unfixed = flows.size();
  while (unfixed > 0) {
    // Find the tightest constraint: either a link's fair share-per-weight or
    // a flow's own cap-per-weight (the cap acts as a private pseudo-link).
    double best_share = std::numeric_limits<double>::infinity();
    for (const AllocFlow& f : flows) {
      if (f.fixed) continue;
      for (LinkId l : *f.path) {
        const double w = weight_on_link[l.get()];
        if (w > 0.0) {
          best_share = std::min(best_share, std::max(residual[l.get()], 0.0) / w);
        }
      }
      if (std::isfinite(f.cap)) best_share = std::min(best_share, f.cap / f.weight);
    }
    MCCS_CHECK(std::isfinite(best_share), "unconstrained flow in max-min allocation");

    // Fix every unfixed flow that is bound by this share: flows whose cap is
    // reached, and flows crossing a link whose residual-per-weight equals it.
    bool fixed_any = false;
    for (AllocFlow& f : flows) {
      if (f.fixed) continue;
      bool bound = std::isfinite(f.cap) && f.cap / f.weight <= best_share * (1 + 1e-12);
      if (!bound) {
        for (LinkId l : *f.path) {
          const double w = weight_on_link[l.get()];
          if (w > 0.0 &&
              std::max(residual[l.get()], 0.0) / w <= best_share * (1 + 1e-12)) {
            bound = true;
            break;
          }
        }
      }
      if (!bound) continue;
      f.rate = best_share * f.weight;
      f.fixed = true;
      fixed_any = true;
      --unfixed;
      for (LinkId l : *f.path) {
        residual[l.get()] -= f.rate;
        weight_on_link[l.get()] -= f.weight;
      }
    }
    MCCS_CHECK(fixed_any, "max-min allocation failed to make progress");
  }
}

}  // namespace

FlowId Network::start_flow(FlowSpec spec) {
  MCCS_EXPECTS(spec.src != spec.dst);
  MCCS_EXPECTS(spec.background_demand > 0.0 || spec.size > 0);
  MCCS_EXPECTS(spec.weight > 0.0);

  const std::uint32_t id = next_flow_id_++;
  FlowState st;
  st.path = spec.route.valid()
                ? routing_.by_route_id(spec.src, spec.dst, spec.route)
                : routing_.by_ecmp(spec.src, spec.dst, spec.ecmp_key);
  st.remaining = static_cast<double>(spec.size);
  st.spec = std::move(spec);

  const Time latency = st.spec.start_latency;
  auto [it, inserted] = flows_.emplace(id, std::move(st));
  MCCS_CHECK(inserted, "duplicate flow id");

  if (latency > 0.0) {
    it->second.activation =
        loop_->schedule_after(latency, [this, id] { activate_flow(id); });
  } else {
    it->second.started = true;
    advance_progress();
    reallocate();
  }
  return FlowId{id};
}

void Network::activate_flow(std::uint32_t id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // cancelled while latent
  it->second.started = true;
  advance_progress();
  reallocate();
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id.get());
  if (it == flows_.end()) return;
  advance_progress();
  loop_->cancel(it->second.completion);
  loop_->cancel(it->second.activation);
  flows_.erase(it);
  reallocate();
}

void Network::pause_flow(FlowId id) {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  if (it->second.paused) return;
  advance_progress();
  it->second.paused = true;
  reallocate();
}

void Network::resume_flow(FlowId id) {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  if (!it->second.paused) return;
  advance_progress();
  it->second.paused = false;
  reallocate();
}

Bandwidth Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  return it->second.rate;
}

Bytes Network::flow_remaining(FlowId id) const {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  return static_cast<Bytes>(std::ceil(std::max(it->second.remaining, 0.0)));
}

const Path& Network::flow_path(FlowId id) const {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  return it->second.path;
}

Bandwidth Network::link_throughput(LinkId id) const {
  Bandwidth total = 0.0;
  for (const auto& [fid, f] : flows_) {
    if (!allocatable(f)) continue;
    for (LinkId l : f.path) {
      if (l == id) {
        total += f.rate;
        break;
      }
    }
  }
  return total;
}

std::size_t Network::link_flow_count(LinkId id) const {
  std::size_t n = 0;
  for (const auto& [fid, f] : flows_) {
    if (!allocatable(f) || f.spec.background_demand > 0.0) continue;
    for (LinkId l : f.path) {
      if (l == id) {
        ++n;
        break;
      }
    }
  }
  return n;
}

void Network::advance_progress() {
  const Time now = loop_->now();
  const Time dt = now - last_progress_time_;
  if (dt <= 0.0) {
    last_progress_time_ = now;
    return;
  }
  for (auto& [id, f] : flows_) {
    if (!allocatable(f) || f.spec.background_demand > 0.0) continue;
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  last_progress_time_ = now;
}

void Network::reallocate() {
  // Phase 1: background flows take their demand with strict priority,
  // sharing capacity weighted by demand if oversubscribed.
  std::vector<Bandwidth> residual(topo_->link_count());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = topo_->link(LinkId{static_cast<std::uint32_t>(i)}).capacity;
  }

  std::vector<AllocFlow> background;
  std::vector<AllocFlow> normal;
  for (auto& [id, f] : flows_) {
    if (!allocatable(f)) {
      f.rate = 0.0;
      loop_->cancel(f.completion);
      f.completion = {};
      continue;
    }
    if (f.spec.background_demand > 0.0) {
      background.push_back(AllocFlow{id, &f.path, f.spec.background_demand,
                                     f.spec.background_demand});
    } else {
      normal.push_back(AllocFlow{id, &f.path, f.spec.weight, f.spec.rate_cap});
    }
  }

  max_min_allocate(background, residual);
  max_min_allocate(normal, residual);

  for (const AllocFlow& a : background) flows_.at(a.id).rate = a.rate;

  // Reschedule completion events for normal flows.
  for (const AllocFlow& a : normal) {
    FlowState& f = flows_.at(a.id);
    f.rate = a.rate;
    loop_->cancel(f.completion);
    f.completion = {};
    if (f.remaining <= 0.0) {
      // Already delivered; complete "now" (from a fresh event for re-entrancy).
      const std::uint32_t id = a.id;
      f.completion = loop_->schedule_after(0.0, [this, id] { complete_flow(id); });
    } else if (f.rate > kRateEpsilon) {
      const std::uint32_t id = a.id;
      const Time eta = f.remaining / f.rate;
      f.completion = loop_->schedule_after(eta, [this, id] { complete_flow(id); });
    }
  }
}

void Network::complete_flow(std::uint32_t id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_progress();
  it->second.remaining = 0.0;

  FlowSpec spec = std::move(it->second.spec);
  flows_.erase(it);
  reallocate();
  if (spec.on_complete) spec.on_complete(FlowId{id}, loop_->now());
}

}  // namespace mccs::net
