#include "netsim/network.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/parallel.h"

namespace mccs::net {
namespace {

constexpr double kRateEpsilon = 1e-9;  // bytes/s below which a rate is "zero"

struct AllocFlow {
  std::uint32_t id;
  const Path* path;
  double weight;
  Bandwidth cap;
  Bandwidth rate = 0.0;
  bool fixed = false;
};

/// Weighted max-min fair allocation with per-flow caps (progressive filling),
/// scoped to one bottleneck component. `residual` and `weight_on_link` are
/// link-indexed scratch arrays owned by the caller; only entries for `links`
/// (the union of the flows' paths) are read or written, so the caller can
/// reuse them across calls without O(link_count) re-initialisation.
///
/// Returns true on a clean solve. A pathological capacity state (an
/// unconstrained flow, or an iteration that cannot fix anything) pins the
/// remaining unfixed flows at rate zero, appends their ids to `unsatisfied`,
/// and returns false — degrading those flows instead of aborting the service.
bool max_min_allocate(std::vector<AllocFlow>& flows,
                      std::vector<Bandwidth>& residual,
                      std::vector<double>& weight_on_link,
                      const std::vector<std::uint32_t>& links,
                      std::vector<std::uint32_t>& unsatisfied) {
  auto pin_unfixed_at_zero = [&flows, &unsatisfied] {
    for (AllocFlow& f : flows) {
      if (f.fixed) continue;
      f.rate = 0.0;
      f.fixed = true;
      unsatisfied.push_back(f.id);
    }
    return false;
  };
  if (flows.empty()) return true;

  // Per-link unfixed weight sums.
  for (std::uint32_t l : links) weight_on_link[l] = 0.0;
  for (const AllocFlow& f : flows) {
    for (LinkId l : *f.path) weight_on_link[l.get()] += f.weight;
  }

  std::size_t unfixed = flows.size();
  while (unfixed > 0) {
    // Find the tightest constraint: either a link's fair share-per-weight or
    // a flow's own cap-per-weight (the cap acts as a private pseudo-link).
    double best_share = std::numeric_limits<double>::infinity();
    for (const AllocFlow& f : flows) {
      if (f.fixed) continue;
      for (LinkId l : *f.path) {
        const double w = weight_on_link[l.get()];
        if (w > 0.0) {
          best_share = std::min(best_share, std::max(residual[l.get()], 0.0) / w);
        }
      }
      if (std::isfinite(f.cap)) best_share = std::min(best_share, f.cap / f.weight);
    }
    if (!std::isfinite(best_share)) return pin_unfixed_at_zero();

    // Fix every unfixed flow that is bound by this share: flows whose cap is
    // reached, and flows crossing a link whose residual-per-weight equals it.
    bool fixed_any = false;
    for (AllocFlow& f : flows) {
      if (f.fixed) continue;
      bool bound = std::isfinite(f.cap) && f.cap / f.weight <= best_share * (1 + 1e-12);
      if (!bound) {
        for (LinkId l : *f.path) {
          const double w = weight_on_link[l.get()];
          if (w > 0.0 &&
              std::max(residual[l.get()], 0.0) / w <= best_share * (1 + 1e-12)) {
            bound = true;
            break;
          }
        }
      }
      if (!bound) continue;
      f.rate = best_share * f.weight;
      f.fixed = true;
      fixed_any = true;
      --unfixed;
      for (LinkId l : *f.path) {
        residual[l.get()] -= f.rate;
        weight_on_link[l.get()] -= f.weight;
      }
    }
    if (!fixed_any) return pin_unfixed_at_zero();
  }
  return true;
}

}  // namespace

FlowId Network::start_flow(FlowSpec spec) {
  MCCS_EXPECTS(spec.src != spec.dst);
  MCCS_EXPECTS(spec.background_demand > 0.0 || spec.size > 0);
  MCCS_EXPECTS(spec.weight > 0.0);

  const std::uint32_t id = next_flow_id_++;
  FlowState st;
  st.path = spec.route.valid()
                ? routing_.by_route_id(spec.src, spec.dst, spec.route)
                : routing_.by_ecmp(spec.src, spec.dst, spec.ecmp_key);
  st.remaining = static_cast<double>(spec.size);
  st.last_update = loop_->now();
  st.created = loop_->now();
  st.spec = std::move(spec);

  const Time latency = st.spec.start_latency;
  auto [it, inserted] = flows_.emplace(id, std::move(st));
  MCCS_CHECK(inserted, "duplicate flow id");

  if (latency > 0.0) {
    it->second.activation =
        loop_->schedule_after(latency, [this, id] { activate_flow(id); });
  } else {
    it->second.started = true;
    insert_into_index(id, it->second);
    reallocate(it->second.path);
  }
  return FlowId{id};
}

void Network::activate_flow(std::uint32_t id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;  // cancelled while latent
  FlowState& f = it->second;
  f.started = true;
  f.last_update = loop_->now();
  if (f.paused) return;  // paused while latent; resume_flow picks it up
  insert_into_index(id, f);
  reallocate(f.path);
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id.get());
  if (it == flows_.end()) return;
  FlowState& f = it->second;
  loop_->cancel(f.completion);
  loop_->cancel(f.activation);
  const bool was_allocated = allocatable(f);
  if (was_allocated) remove_from_index(id.get(), f);
  emit_flow_span(f, /*completed=*/false);
  const Path path = std::move(f.path);
  flows_.erase(it);
  // A latent or paused flow had rate 0 and constrained nobody.
  if (was_allocated) reallocate(path);
}

void Network::pause_flow(FlowId id) {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  FlowState& f = it->second;
  if (f.paused) return;
  f.paused = true;
  if (!f.started) return;  // latent: was never allocated
  touch(f, loop_->now());
  remove_from_index(id.get(), f);
  f.rate = 0.0;
  loop_->cancel(f.completion);
  f.completion = {};
  reallocate(f.path);
}

void Network::resume_flow(FlowId id) {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  FlowState& f = it->second;
  if (!f.paused) return;
  f.paused = false;
  if (!f.started) return;  // activation will insert it
  f.last_update = loop_->now();
  insert_into_index(id.get(), f);
  reallocate(f.path);
}

Bandwidth Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  return it->second.rate;
}

Bytes Network::flow_remaining(FlowId id) const {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  const FlowState& f = it->second;
  // Lazy progress: integrate the stored counter forward to now on read.
  double rem = f.remaining;
  if (allocatable(f) && f.spec.background_demand <= 0.0) {
    rem -= f.rate * (loop_->now() - f.last_update);
  }
  return static_cast<Bytes>(std::ceil(std::max(rem, 0.0)));
}

const Path& Network::flow_path(FlowId id) const {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  return it->second.path;
}

const FlowSpec& Network::flow_spec(FlowId id) const {
  auto it = flows_.find(id.get());
  MCCS_EXPECTS(it != flows_.end());
  return it->second.spec;
}

std::vector<FlowId> Network::active_flows() const {
  std::vector<FlowId> out;
  out.reserve(flows_.size());
  for (const auto& [id, f] : flows_) out.push_back(FlowId{id});
  std::sort(out.begin(), out.end());
  return out;
}

void Network::set_link_state(LinkId id, LinkState state, double capacity_fraction) {
  MCCS_EXPECTS(id.get() < links_.size());
  double scale = 1.0;
  switch (state) {
    case LinkState::kUp:
      scale = 1.0;
      break;
    case LinkState::kDegraded:
      MCCS_EXPECTS(capacity_fraction > 0.0 && capacity_fraction <= 1.0);
      scale = capacity_fraction;
      break;
    case LinkState::kDown:
      scale = 0.0;
      break;
  }
  if (link_states_[id.get()] == state && capacity_scale_[id.get()] == scale) return;
  link_states_[id.get()] = state;
  capacity_scale_[id.get()] = scale;
  link_changes_.push_back(LinkChange{id, state, scale, loop_->now()});
  // The link is its own seed: every flow crossing it (and their bottleneck
  // component) re-solves; everyone else keeps their rates and events.
  const Path seed{id};
  reallocate(seed);
}

void Network::insert_into_index(std::uint32_t id, const FlowState& f) {
  for (LinkId l : f.path) {
    LinkIndex& li = links_[l.get()];
    li.flows.push_back(id);
    li.throughput += f.rate;
    if (f.spec.background_demand <= 0.0) ++li.normal_count;
  }
}

void Network::remove_from_index(std::uint32_t id, const FlowState& f) {
  for (LinkId l : f.path) {
    LinkIndex& li = links_[l.get()];
    auto pos = std::find(li.flows.begin(), li.flows.end(), id);
    MCCS_ASSERT(pos != li.flows.end());
    *pos = li.flows.back();
    li.flows.pop_back();
    li.throughput -= f.rate;
    if (f.spec.background_demand <= 0.0) {
      MCCS_ASSERT(li.normal_count > 0);
      --li.normal_count;
    }
  }
}

void Network::collect_component(const Path& seed) {
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  auto mark_link = [this](LinkId l) {
    if (link_mark_[l.get()] != epoch_) {
      link_mark_[l.get()] = epoch_;
      comp_links_.push_back(l.get());
    }
  };
  // Seed links are always included (even if now memberless) so their index
  // throughput is refreshed after a removal.
  for (LinkId l : seed) mark_link(l);
  // BFS over links: any flow on a reached link joins the component and
  // contributes its own links to the frontier.
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    for (std::uint32_t fid : links_[comp_links_[i]].flows) {
      FlowState& f = flows_.at(fid);
      if (f.mark == epoch_) continue;
      f.mark = epoch_;
      comp_flows_.push_back(fid);
      for (LinkId l : f.path) mark_link(l);
    }
  }
  // Ascending-id order matches the reference path bit-for-bit (the solver's
  // floating-point results depend on per-link accumulation order).
  std::sort(comp_flows_.begin(), comp_flows_.end());
}

void Network::collect_all() {
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  for (auto& [id, f] : flows_) {
    if (!allocatable(f)) continue;
    comp_flows_.push_back(id);
    for (LinkId l : f.path) {
      if (link_mark_[l.get()] != epoch_) {
        link_mark_[l.get()] = epoch_;
        comp_links_.push_back(l.get());
      }
    }
  }
  std::sort(comp_flows_.begin(), comp_flows_.end());
}

void Network::reallocate(const Path& seed) {
  if (options_.incremental) {
    collect_component(seed);
  } else {
    collect_all();
    // Reference mode still refreshes the seed's links below even when they
    // lost their last member.
    for (LinkId l : seed) {
      if (link_mark_[l.get()] != epoch_) {
        link_mark_[l.get()] = epoch_;
        comp_links_.push_back(l.get());
      }
    }
  }
  allocate_component();
}

void Network::allocate_component() {
  const Time now = loop_->now();

  // Partition the collected flows into disjoint bottleneck sub-components
  // (union-find over their links). A multi-link seed — a completed or
  // cancelled flow's path, a failed link — can gather flows that share no
  // link with each other; each such sub-component's max-min solution only
  // involves its own links and flows, so solving them separately is
  // arithmetically identical to the joint solve, and independent solves can
  // run concurrently on the task pool. Rates, progress integration, and
  // completion events are applied serially afterwards in ascending flow-id
  // order, so the event-loop insertion order (and therefore every simulated
  // outcome) is independent of the thread count.
  for (std::uint32_t l : comp_links_) uf_parent_[l] = l;
  auto find_root = [this](std::uint32_t l) {
    while (uf_parent_[l] != l) {
      uf_parent_[l] = uf_parent_[uf_parent_[l]];  // path halving
      l = uf_parent_[l];
    }
    return l;
  };
  for (std::uint32_t id : comp_flows_) {
    const Path& p = flows_.at(id).path;
    // `acc` stays a live root throughout (both operands of every union are
    // roots, and we keep the winner): re-parenting a non-root would silently
    // undo an earlier union and split the component.
    std::uint32_t acc = find_root(p.front().get());
    for (std::size_t i = 1; i < p.size(); ++i) {
      const std::uint32_t r = find_root(p[i].get());
      if (r == acc) continue;
      const std::uint32_t lo = std::min(acc, r);
      uf_parent_[std::max(acc, r)] = lo;
      acc = lo;
    }
  }
  // Sub-component order: ascending first-member flow id (deterministic).
  comp_roots_.clear();
  auto comp_of = [this](std::uint32_t root) {
    for (std::size_t i = 0; i < comp_roots_.size(); ++i) {
      if (comp_roots_[i] == root) return i;
    }
    comp_roots_.push_back(root);
    return comp_roots_.size() - 1;
  };
  for (std::uint32_t id : comp_flows_) {
    comp_of(find_root(flows_.at(id).path.front().get()));
  }
  const std::size_t num_comps = comp_roots_.size();

  struct SubComp {
    std::vector<AllocFlow> background;
    std::vector<AllocFlow> normal;
    std::vector<std::uint32_t> links;
    std::vector<std::uint32_t> unsatisfied;
    bool bg_ok = true;
    bool normal_ok = true;
  };
  std::vector<SubComp> comps(num_comps);

  // Build each sub-component's flow lists in ascending id order (the order
  // the solver's floating point depends on) and hand it its own links.
  for (std::uint32_t id : comp_flows_) {
    FlowState& f = flows_.at(id);
    SubComp& sc = comps[comp_of(find_root(f.path.front().get()))];
    if (f.spec.background_demand > 0.0) {
      sc.background.push_back(AllocFlow{id, &f.path, f.spec.background_demand,
                                        f.spec.background_demand});
    } else {
      sc.normal.push_back(AllocFlow{id, &f.path, f.spec.weight, f.spec.rate_cap});
    }
  }
  for (std::uint32_t l : comp_links_) {
    // Memberless links (e.g. the just-vacated path that seeded this solve)
    // belong to no sub-component; they only need the index refresh below.
    const std::uint32_t root = find_root(l);
    for (std::size_t i = 0; i < comp_roots_.size(); ++i) {
      if (comp_roots_[i] == root) {
        comps[i].links.push_back(l);
        break;
      }
    }
  }

  // Solve the sub-components — concurrently when there are several and the
  // pool has width. The shared link-indexed scratch arrays (residual_,
  // weight_scratch_) are safe: disjoint sub-components touch disjoint link
  // entries. Background flows take their demand with strict priority first,
  // sharing capacity weighted by demand if oversubscribed; normal flows
  // max-min share the remainder.
  auto solve_one = [this](SubComp& sc) {
    for (std::uint32_t l : sc.links) {
      // Effective capacity folds in the administrative link state: degraded
      // links keep a fraction, down links contribute zero (their flows come
      // out of the solve at rate zero and simply stall — no completion
      // event).
      residual_[l] = topo_->link(LinkId{l}).capacity * capacity_scale_[l];
    }
    sc.bg_ok = max_min_allocate(sc.background, residual_, weight_scratch_,
                                sc.links, sc.unsatisfied);
    sc.normal_ok = max_min_allocate(sc.normal, residual_, weight_scratch_,
                                    sc.links, sc.unsatisfied);
  };
  // Only hand the solves to the pool when the reallocation is wide enough to
  // amortise a dispatch: the common incremental case — one small component of
  // a few flows — costs less than waking a worker. The partition above always
  // runs, and each sub-component's arithmetic is identical either way, so the
  // execution vehicle can never change a rate.
  constexpr std::size_t kParallelSolveMinFlows = 32;
  if (num_comps > 1 && comp_flows_.size() >= kParallelSolveMinFlows) {
    par::parallel_for(num_comps, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) solve_one(comps[i]);
    });
  } else {
    for (SubComp& sc : comps) solve_one(sc);
  }

  unsatisfied_scratch_.clear();
  bool bg_ok = true;
  bool normal_ok = true;
  for (SubComp& sc : comps) {
    bg_ok = bg_ok && sc.bg_ok;
    normal_ok = normal_ok && sc.normal_ok;
    unsatisfied_scratch_.insert(unsatisfied_scratch_.end(),
                                sc.unsatisfied.begin(), sc.unsatisfied.end());
  }
  if (!bg_ok || !normal_ok) {
    ++allocation_error_count_;
    if (allocation_error_handler_) {
      AllocationError err;
      err.at = now;
      err.flows.reserve(unsatisfied_scratch_.size());
      std::sort(unsatisfied_scratch_.begin(), unsatisfied_scratch_.end());
      for (std::uint32_t id : unsatisfied_scratch_) err.flows.push_back(FlowId{id});
      // Fresh event: the handler may mutate the flow set (cancel the
      // offending flows, start replacements) without re-entering this solve.
      loop_->schedule_after(0.0, [this, err = std::move(err)] {
        if (allocation_error_handler_) allocation_error_handler_(err);
      });
    }
  }

  // Apply the solved rates serially, iterating comp_flows_ in ascending id
  // order across all sub-components (each sub-component's lists were built
  // in that same order, so per-component cursors walk them in lockstep).
  // This reproduces the exact completion-event insertion order of the
  // sequential solver regardless of how many threads solved above. A flow
  // whose rate is unchanged (within kRateEpsilon) keeps its rate, its
  // un-integrated progress, and its already-scheduled completion event — the
  // lazy fast path that lets an untouched bottleneck component cost nothing.
  comp_cursor_bg_.assign(num_comps, 0);
  comp_cursor_normal_.assign(num_comps, 0);
  for (std::uint32_t id : comp_flows_) {
    FlowState& f = flows_.at(id);
    const std::size_t ci = comp_of(find_root(f.path.front().get()));
    SubComp& sc = comps[ci];
    if (f.spec.background_demand > 0.0) {
      const AllocFlow& a = sc.background[comp_cursor_bg_[ci]++];
      MCCS_ASSERT(a.id == id);
      f.rate = a.rate;
      continue;
    }
    const AllocFlow& a = sc.normal[comp_cursor_normal_[ci]++];
    MCCS_ASSERT(a.id == id);
    if (std::abs(a.rate - f.rate) <= kRateEpsilon) continue;
    touch(f, now);  // integrate at the old rate first
    f.rate = a.rate;
    loop_->cancel(f.completion);
    f.completion = {};
    if (f.remaining <= 0.0) {
      // Already delivered; complete "now" (from a fresh event for re-entrancy).
      f.completion = loop_->schedule_after(0.0, [this, id] { complete_flow(id); });
    } else if (f.rate > kRateEpsilon) {
      const Time eta = f.remaining / f.rate;
      f.completion = loop_->schedule_after(eta, [this, id] { complete_flow(id); });
    }
  }

  // Refresh the touched links' monitored throughput from their members'
  // fresh rates (exact recomputation, so incremental updates cannot drift).
  // The utilization sampler integrates the *outgoing* rate over the interval
  // it was in force before the new one replaces it, and (enabled mode only)
  // drops a counter sample on the timeline when the rate actually changed.
  const bool record = telemetry_ != nullptr && telemetry_->enabled();
  if (record) counter_scratch_.clear();
  for (std::uint32_t l : comp_links_) {
    LinkIndex& li = links_[l];
    Bandwidth total = 0.0;
    for (std::uint32_t fid : li.flows) total += flows_.at(fid).rate;
    link_bytes_[l] += li.throughput * (now - link_sample_time_[l]);
    link_sample_time_[l] = now;
    if (record && total != li.throughput) {
      if (link_track_ < 0) {
        link_track_ = telemetry_->timeline().track("netsim", "links");
        link_counter_names_.resize(links_.size());
        for (std::size_t i = 0; i < links_.size(); ++i) {
          link_counter_names_[i] = "link" + std::to_string(i);
        }
        counter_scratch_.reserve(links_.size());
      }
      counter_scratch_.push_back(
          {link_counter_names_[l].c_str(), total * 8.0 / 1e9});
    }
    li.throughput = total;
  }
  if (record && !counter_scratch_.empty()) {
    // All links whose allocated rate changed in this reallocation, batched
    // into one "link_gbps" sample (a series per link in the counter chart).
    // Coalesced across same-virtual-instant cascades touching the same link
    // set: only the final rates of the burst survive.
    link_sample_event_ = telemetry_->timeline().counter(
        link_track_, "link_gbps", now, counter_scratch_.data(),
        counter_scratch_.data() + counter_scratch_.size(), link_sample_event_);
  }
}

void Network::emit_flow_span(const FlowState& f, bool completed) {
  if (telemetry_ == nullptr || !telemetry_->enabled()) return;
  if (f.spec.background_demand > 0.0) return;  // background flows never end
  telemetry::Timeline& tl = telemetry_->timeline();
  if (flow_track_ < 0) flow_track_ = tl.track("netsim", "flows");
  // Lean on purpose (endpoints ride on the matching transport chunk_send
  // span): flow completion is the hottest netsim recording site.
  tl.span(flow_track_, "netsim",
          completed ? "flow" : "flow_cancelled", f.created, loop_->now(),
          {{"app", static_cast<std::int64_t>(f.spec.app.get())},
           {"bytes", static_cast<std::uint64_t>(f.spec.size)}});
}

void Network::complete_flow(std::uint32_t id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  FlowState& f = it->second;
  f.remaining = 0.0;
  remove_from_index(id, f);
  emit_flow_span(f, /*completed=*/true);
  FlowSpec spec = std::move(f.spec);
  const Path path = std::move(f.path);
  flows_.erase(it);
  reallocate(path);
  if (spec.on_complete) spec.on_complete(FlowId{id}, loop_->now());
}

}  // namespace mccs::net
