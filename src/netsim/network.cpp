#include "netsim/network.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/parallel.h"

namespace mccs::net {
namespace {

constexpr double kRateEpsilon = 1e-9;  // bytes/s below which a rate is "zero"

// Acknowledged-by-everyone entries are trimmed from the link-change log in
// batches of this size (amortises the front erase).
constexpr std::size_t kLinkChangeTrimBatch = 1024;

}  // namespace

/// Weighted max-min fair allocation with per-flow caps (progressive filling),
/// scoped to one bottleneck component. `residual` and `weight_on_link` are
/// link-indexed scratch arrays owned by the caller; only entries for `links`
/// (the union of the flows' paths) are read or written, so the caller can
/// reuse them across calls without O(link_count) re-initialisation.
///
/// Returns true on a clean solve. A pathological capacity state (an
/// unconstrained flow, or an iteration that cannot fix anything) pins the
/// remaining unfixed flows at rate zero, appends their slots to
/// `unsatisfied`, and returns false — degrading those flows instead of
/// aborting the service.
bool Network::max_min_allocate(std::vector<AllocFlow>& flows,
                               std::vector<Bandwidth>& residual,
                               std::vector<double>& weight_on_link,
                               const std::vector<std::uint32_t>& links,
                               std::vector<std::uint32_t>& unsatisfied) {
  auto pin_unfixed_at_zero = [&flows, &unsatisfied] {
    for (AllocFlow& f : flows) {
      if (f.fixed) continue;
      f.rate = 0.0;
      f.fixed = true;
      unsatisfied.push_back(f.slot);
    }
    return false;
  };
  if (flows.empty()) return true;

  // Per-link unfixed weight sums.
  for (std::uint32_t l : links) weight_on_link[l] = 0.0;
  for (const AllocFlow& f : flows) {
    for (LinkId l : f.path) weight_on_link[l.get()] += f.weight;
  }

  std::size_t unfixed = flows.size();
  while (unfixed > 0) {
    // Find the tightest constraint: either a link's fair share-per-weight or
    // a flow's own cap-per-weight (the cap acts as a private pseudo-link).
    double best_share = std::numeric_limits<double>::infinity();
    for (const AllocFlow& f : flows) {
      if (f.fixed) continue;
      for (LinkId l : f.path) {
        const double w = weight_on_link[l.get()];
        if (w > 0.0) {
          best_share = std::min(best_share, std::max(residual[l.get()], 0.0) / w);
        }
      }
      if (std::isfinite(f.cap)) best_share = std::min(best_share, f.cap / f.weight);
    }
    if (!std::isfinite(best_share)) return pin_unfixed_at_zero();

    // Fix every unfixed flow that is bound by this share: flows whose cap is
    // reached, and flows crossing a link whose residual-per-weight equals it.
    bool fixed_any = false;
    for (AllocFlow& f : flows) {
      if (f.fixed) continue;
      bool bound = std::isfinite(f.cap) && f.cap / f.weight <= best_share * (1 + 1e-12);
      if (!bound) {
        for (LinkId l : f.path) {
          const double w = weight_on_link[l.get()];
          if (w > 0.0 &&
              std::max(residual[l.get()], 0.0) / w <= best_share * (1 + 1e-12)) {
            bound = true;
            break;
          }
        }
      }
      if (!bound) continue;
      f.rate = best_share * f.weight;
      f.fixed = true;
      fixed_any = true;
      --unfixed;
      for (LinkId l : f.path) {
        residual[l.get()] -= f.rate;
        weight_on_link[l.get()] -= f.weight;
      }
    }
    if (!fixed_any) return pin_unfixed_at_zero();
  }
  return true;
}

void Network::reserve_flows(std::size_t concurrent, std::size_t lifetime) {
  hot_remaining_.reserve(concurrent);
  hot_rate_.reserve(concurrent);
  hot_last_update_.reserve(concurrent);
  hot_mark_.reserve(concurrent);
  param_.reserve(concurrent);
  cold_.reserve(concurrent);
  link_pos_.reserve(concurrent);
  live_next_.reserve(concurrent);
  live_prev_.reserve(concurrent);
  free_slots_.reserve(concurrent);
  comp_flows_.reserve(concurrent);
  comp_links_.reserve(topo_->link_count());
  batch_seed_links_.reserve(topo_->link_count());
  id_to_slot_.reserve(lifetime);
}

void Network::set_telemetry(telemetry::Telemetry* t) {
  telemetry_ = t;
  if (t != nullptr) {
    solves_counter_ = &t->metrics().counter("netsim_solves_total");
    coalesced_counter_ = &t->metrics().counter("netsim_coalesced_flows_total");
    // The members are authoritative from construction; a late attach (the
    // Fabric wires telemetry right after constructing the network) catches
    // the registry up so both views agree.
    if (solves_counter_->value() < solves_total_) {
      solves_counter_->increment(solves_total_ - solves_counter_->value());
    }
    if (coalesced_counter_->value() < coalesced_flows_total_) {
      coalesced_counter_->increment(coalesced_flows_total_ -
                                    coalesced_counter_->value());
    }
  } else {
    solves_counter_ = nullptr;
    coalesced_counter_ = nullptr;
  }
}

Network::StorageFootprint Network::flow_state_footprint() {
  StorageFootprint f;
  f.hot = sizeof(Bytes) + sizeof(Bandwidth) + sizeof(Time) + sizeof(std::uint64_t);
  f.param = sizeof(FlowParam);
  f.cold = sizeof(FlowCold);
  return f;
}

PathView Network::intern_path(const Path& p) {
  auto it = path_intern_.find(&p);
  if (it != path_intern_.end()) return it->second;
  const std::size_t n = p.size();
  MCCS_EXPECTS(n > 0);
  if (path_arena_.empty() || arena_used_ + n > kArenaBlockLinks) {
    path_arena_.push_back(
        std::make_unique<LinkId[]>(std::max(n, kArenaBlockLinks)));
    arena_used_ = 0;
  }
  LinkId* dst = path_arena_.back().get() + arena_used_;
  std::copy(p.begin(), p.end(), dst);
  arena_used_ += n;
  const PathView view{dst, n};
  path_intern_.emplace(&p, view);
  return view;
}

std::uint32_t Network::acquire_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(param_.size());
    hot_remaining_.push_back(0.0);
    hot_rate_.push_back(0.0);
    hot_last_update_.push_back(0.0);
    hot_mark_.push_back(0);
    param_.emplace_back();
    cold_.emplace_back();
    link_pos_.emplace_back();
    live_next_.push_back(kNoSlot);
    live_prev_.push_back(kNoSlot);
  }
  // Link at the tail. Ids are monotone, so tail insertion keeps the live
  // list in ascending-id order — active_flows() walks it sorted for free.
  live_next_[slot] = kNoSlot;
  live_prev_[slot] = live_tail_;
  if (live_tail_ != kNoSlot) {
    live_next_[live_tail_] = slot;
  } else {
    live_head_ = slot;
  }
  live_tail_ = slot;
  ++live_count_;
  return slot;
}

void Network::release_slot(std::uint32_t slot) {
  const std::uint32_t prev = live_prev_[slot];
  const std::uint32_t next = live_next_[slot];
  (prev != kNoSlot ? live_next_[prev] : live_head_) = next;
  (next != kNoSlot ? live_prev_[next] : live_tail_) = prev;
  --live_count_;
  id_to_slot_[param_[slot].seq] = kNoSlot;
  // Drop the cold section's owned state (the on_complete closure in
  // particular) so a recycled slot cannot leak or observe a prior tenant.
  cold_[slot].spec = FlowSpec{};
  cold_[slot].completion = {};
  cold_[slot].completion_at = kNoCompletion;
  cold_[slot].activation = {};
  cold_[slot].cohort_key = 0;
  cold_[slot].in_cohort = false;
  param_[slot].path = {};
  free_slots_.push_back(slot);
}

FlowId Network::start_flow(FlowSpec spec) {
  MCCS_EXPECTS(spec.src != spec.dst);
  MCCS_EXPECTS(spec.background_demand > 0.0 || spec.size > 0);
  MCCS_EXPECTS(spec.weight > 0.0);

  const std::uint32_t id = next_flow_id_++;
  const Path& route = spec.route.valid()
                          ? routing_.by_route_id(spec.src, spec.dst, spec.route)
                          : routing_.by_ecmp(spec.src, spec.dst, spec.ecmp_key);

  const std::uint32_t slot = acquire_slot();
  MCCS_ASSERT(id_to_slot_.size() == id);
  id_to_slot_.push_back(slot);

  hot_remaining_[slot] = static_cast<double>(spec.size);
  hot_rate_[slot] = 0.0;
  hot_last_update_[slot] = loop_->now();
  hot_mark_[slot] = 0;

  FlowParam& p = param_[slot];
  p.path = intern_path(route);
  p.rate_cap = spec.rate_cap;
  p.weight = spec.weight;
  p.background_demand = spec.background_demand;
  p.seq = id;
  p.started = false;
  p.paused = false;

  FlowCold& c = cold_[slot];
  c.created = loop_->now();
  const Time latency = spec.start_latency;
  c.spec = std::move(spec);

  if (latency > 0.0) {
    if (options_.coalesce) {
      // Activation cohort: latent flows sharing one exact activation instant
      // (a collective launch posts its chunk flows in one handler with one
      // start latency) activate through a single event — scheduled at the
      // seq position the first member's own activation would have held, so
      // ordering against other same-instant events is unchanged — and solve
      // once. Keyed by the bit pattern of the instant schedule_after would
      // compute, so membership is exact-FP, never epsilon.
      const Time at = loop_->now() + latency;
      std::uint64_t key = 0;
      static_assert(sizeof(key) == sizeof(at));
      std::memcpy(&key, &at, sizeof(key));
      auto [it, fresh] = activation_cohorts_.try_emplace(key);
      ActivationCohort& cohort = it->second;
      cohort.ids.push_back(id);
      ++cohort.live;
      c.cohort_key = key;
      c.in_cohort = true;
      if (fresh) {
        cohort.event =
            loop_->schedule_at(at, [this, key] { activate_cohort(key); });
      }
    } else {
      c.activation =
          loop_->schedule_after(latency, [this, id] { activate_flow(id); });
    }
  } else {
    p.started = true;
    insert_into_index(slot);
    reallocate(p.path);
  }
  return FlowId{id};
}

void Network::activate_flow(std::uint32_t id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) return;  // cancelled while latent
  // The activation phase is over: hand the shared cohort fields to the
  // completion phase (set again on completion-cohort enrollment).
  cold_[slot].in_cohort = false;
  cold_[slot].cohort_key = 0;
  FlowParam& p = param_[slot];
  p.started = true;
  hot_last_update_[slot] = loop_->now();
  if (p.paused) return;  // paused while latent; resume_flow picks it up
  insert_into_index(slot);
  reallocate(p.path);
}

void Network::activate_cohort(std::uint64_t key) {
  const auto it = activation_cohorts_.find(key);
  MCCS_ASSERT(it != activation_cohorts_.end());
  // Members activate in start order (== ascending id — the order their
  // per-flow activation events would have fired in); the shared batch folds
  // the burst into one union solve. activate_flow runs no user callbacks,
  // so the cohort map cannot be mutated mid-walk.
  begin_batch();
  for (const std::uint32_t id : it->second.ids) activate_flow(id);
  end_batch();
  activation_cohorts_.erase(it);
}

void Network::schedule_pending_completions() {
  // Group the solve's rescheduled completions by exact instant. The common
  // case — every instant distinct — takes the singleton path below and costs
  // one per-flow event each, as before. Flows sharing a bit-identical
  // completion instant (a symmetric cascade: equal sizes, equal rates) share
  // one cohort event instead of N.
  //
  // Ordering: pending_completions_ is in apply order (ascending flow id).
  // Distinct instants never contend for queue position, so emitting events
  // here, grouped, instead of one-by-one inside the apply loop is
  // order-equivalent; within one instant the cohort drains its members in
  // enrollment order — the order their per-flow events would have fired in.
  const std::size_t n = pending_completions_.size();
  auto schedule_singleton = [this](const PendingCompletion& pc) {
    const std::uint32_t id = param_[pc.slot].seq;
    cold_[pc.slot].completion =
        loop_->schedule_at(pc.at, [this, id] { complete_flow(id); });
  };
  if (n == 1) {
    schedule_singleton(pending_completions_[0]);
    pending_completions_.clear();
    return;
  }
  pending_order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending_order_[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(pending_order_.begin(), pending_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (pending_completions_[a].bits != pending_completions_[b].bits) {
                return pending_completions_[a].bits < pending_completions_[b].bits;
              }
              return a < b;  // stable within a group: keep apply order
            });
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i + 1;
    while (j < n && pending_completions_[pending_order_[j]].bits ==
                        pending_completions_[pending_order_[i]].bits) {
      ++j;
    }
    if (j == i + 1) {
      schedule_singleton(pending_completions_[pending_order_[i]]);
      i = j;
      continue;
    }
    std::uint32_t idx;
    if (!free_cohorts_.empty()) {
      idx = free_cohorts_.back();
      free_cohorts_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(completion_cohorts_.size());
      completion_cohorts_.emplace_back();
    }
    CompletionCohort& co = completion_cohorts_[idx];
    MCCS_ASSERT(co.ids.empty() && !co.draining);
    for (std::size_t k = i; k < j; ++k) {
      const PendingCompletion& pc = pending_completions_[pending_order_[k]];
      co.ids.push_back(param_[pc.slot].seq);
      cold_[pc.slot].cohort_key = idx;
      cold_[pc.slot].in_cohort = true;
    }
    co.event = loop_->schedule_at(
        pending_completions_[pending_order_[i]].at,
        [this, idx] { drain_completion_cohort(idx); });
    i = j;
  }
  pending_completions_.clear();
}

void Network::leave_completion_cohort(std::uint32_t slot) {
  FlowCold& c = cold_[slot];
  if (!c.in_cohort) return;
  CompletionCohort& co = completion_cohorts_[c.cohort_key];
  if (!co.draining) {
    const auto pos = std::find(co.ids.begin(), co.ids.end(), param_[slot].seq);
    MCCS_ASSERT(pos != co.ids.end());
    co.ids.erase(pos);
    if (co.ids.empty()) {
      loop_->cancel(co.event);
      co.event = {};
      free_cohorts_.push_back(static_cast<std::uint32_t>(c.cohort_key));
    }
  }
  // Mid-drain the member list was moved out; the drain loop re-checks
  // in_cohort, so resetting the flags is all a leave needs there.
  c.in_cohort = false;
  c.cohort_key = 0;
}

void Network::drain_completion_cohort(std::uint32_t idx) {
  CompletionCohort& co = completion_cohorts_[idx];
  // Move the member list into persistent scratch and mark the record
  // draining: completion callbacks may cancel or pause later members (their
  // leave then only resets the flags), and the batch-close solve may form
  // fresh cohorts — but never from this pool slot, which is freed only after
  // the walk and the solve are done.
  drain_ids_.assign(co.ids.begin(), co.ids.end());
  co.ids.clear();
  co.draining = true;
  begin_batch();
  for (const std::uint32_t id : drain_ids_) {
    const std::uint32_t slot = slot_of(id);
    if (slot == kNoSlot) continue;  // cancelled by an earlier member's callback
    FlowCold& c = cold_[slot];
    if (!c.in_cohort || c.cohort_key != idx) continue;  // left mid-drain
    c.in_cohort = false;
    c.cohort_key = 0;
    complete_flow(id);
  }
  end_batch();
  // Re-index: the batch-close solve may have grown the pool and moved it.
  CompletionCohort& done = completion_cohorts_[idx];
  done.draining = false;
  done.event = {};
  free_cohorts_.push_back(idx);
}

void Network::cancel_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id.get());
  if (slot == kNoSlot) return;
  FlowCold& c = cold_[slot];
  loop_->cancel(c.completion);
  loop_->cancel(c.activation);
  if (!param_[slot].started && c.in_cohort) {
    // Leave the dead id in the member list (activation skips it); when the
    // last live member goes, drop the cohort's event from the loop just as
    // per-flow cancellation would have.
    const auto it = activation_cohorts_.find(c.cohort_key);
    if (it != activation_cohorts_.end() && --it->second.live == 0) {
      loop_->cancel(it->second.event);
      activation_cohorts_.erase(it);
    }
  } else if (param_[slot].started) {
    leave_completion_cohort(slot);
  }
  const bool was_allocated = allocatable(slot);
  if (was_allocated) remove_from_index(slot);
  emit_flow_span(slot, /*completed=*/false);
  // The interned path outlives the slot, so the view stays valid as a seed.
  const PathView path = param_[slot].path;
  release_slot(slot);
  // A latent or paused flow had rate 0 and constrained nobody.
  if (was_allocated) reallocate(path);
}

void Network::pause_flow(FlowId id) {
  const std::uint32_t slot = checked_slot(id.get());
  FlowParam& p = param_[slot];
  if (p.paused) return;
  p.paused = true;
  if (!p.started) return;  // latent: was never allocated
  touch(slot, loop_->now());
  remove_from_index(slot);
  hot_rate_[slot] = 0.0;
  loop_->cancel(cold_[slot].completion);
  cold_[slot].completion = {};
  cold_[slot].completion_at = kNoCompletion;
  leave_completion_cohort(slot);
  reallocate(p.path);
}

void Network::resume_flow(FlowId id) {
  const std::uint32_t slot = checked_slot(id.get());
  FlowParam& p = param_[slot];
  if (!p.paused) return;
  p.paused = false;
  if (!p.started) return;  // activation will insert it
  hot_last_update_[slot] = loop_->now();
  insert_into_index(slot);
  reallocate(p.path);
}

Bandwidth Network::flow_rate(FlowId id) const {
  return hot_rate_[checked_slot(id.get())];
}

Bytes Network::flow_remaining(FlowId id) const {
  const std::uint32_t slot = checked_slot(id.get());
  // Lazy progress: integrate the stored counter forward to now on read.
  double rem = hot_remaining_[slot];
  if (allocatable(slot) && param_[slot].background_demand <= 0.0) {
    rem -= hot_rate_[slot] * (loop_->now() - hot_last_update_[slot]);
  }
  return static_cast<Bytes>(std::ceil(std::max(rem, 0.0)));
}

PathView Network::flow_path(FlowId id) const {
  return param_[checked_slot(id.get())].path;
}

const FlowSpec& Network::flow_spec(FlowId id) const {
  return cold_[checked_slot(id.get())].spec;
}

std::vector<FlowId> Network::active_flows() const {
  std::vector<FlowId> out;
  out.reserve(live_count_);
  for (std::uint32_t s = live_head_; s != kNoSlot; s = live_next_[s]) {
    out.push_back(FlowId{param_[s].seq});
  }
  return out;
}

int Network::register_link_change_consumer() {
  link_change_cursors_.push_back(link_change_base_);
  return static_cast<int>(link_change_cursors_.size() - 1);
}

Network::LinkChangeRegistration Network::register_link_change_consumer_at(
    std::size_t cursor) {
  MCCS_EXPECTS(cursor <= link_change_end());
  LinkChangeRegistration reg;
  if (cursor < link_change_base_) {
    // The history the resume needs is gone: refuse the registration instead
    // of starting at base and silently skipping [cursor, base).
    reg.trimmed = true;
    reg.gap = TrimmedHistory{cursor, link_change_base_};
    return reg;
  }
  link_change_cursors_.push_back(cursor);
  reg.consumer = static_cast<int>(link_change_cursors_.size() - 1);
  return reg;
}

void Network::unregister_link_change_consumer(int consumer) {
  MCCS_EXPECTS(consumer >= 0 &&
               static_cast<std::size_t>(consumer) < link_change_cursors_.size());
  std::size_t& cursor = link_change_cursors_[static_cast<std::size_t>(consumer)];
  MCCS_EXPECTS(cursor != kReleasedCursor);
  cursor = kReleasedCursor;
  // The released cursor may have been the trim bottleneck.
  maybe_trim_link_changes();
}

void Network::ack_link_changes(int consumer, std::size_t upto) {
  MCCS_EXPECTS(consumer >= 0 &&
               static_cast<std::size_t>(consumer) < link_change_cursors_.size());
  MCCS_EXPECTS(upto <= link_change_end());
  std::size_t& cursor = link_change_cursors_[consumer];
  MCCS_EXPECTS(cursor != kReleasedCursor);
  if (upto <= cursor) return;
  cursor = upto;
  maybe_trim_link_changes();
}

void Network::maybe_trim_link_changes() {
  // Keep the log whole when no consumer is live: late (or restarting)
  // consumers must still be able to observe every change. Released cursors
  // no longer pin anything.
  std::size_t min_ack = link_change_end();
  bool any_live = false;
  for (std::size_t c : link_change_cursors_) {
    if (c == kReleasedCursor) continue;
    any_live = true;
    min_ack = std::min(min_ack, c);
  }
  if (!any_live) return;
  const std::size_t drop = min_ack - link_change_base_;
  if (drop < kLinkChangeTrimBatch) return;
  link_changes_.erase(link_changes_.begin(),
                      link_changes_.begin() + static_cast<std::ptrdiff_t>(drop));
  link_change_base_ = min_ack;
}

void Network::set_link_state(LinkId id, LinkState state, double capacity_fraction) {
  MCCS_EXPECTS(id.get() < links_.size());
  double scale = 1.0;
  switch (state) {
    case LinkState::kUp:
      scale = 1.0;
      break;
    case LinkState::kDegraded:
      MCCS_EXPECTS(capacity_fraction > 0.0 && capacity_fraction <= 1.0);
      scale = capacity_fraction;
      break;
    case LinkState::kDown:
      scale = 0.0;
      break;
  }
  if (link_states_[id.get()] == state && capacity_scale_[id.get()] == scale) return;
  link_states_[id.get()] = state;
  capacity_scale_[id.get()] = scale;
  link_changes_.push_back(LinkChange{id, state, scale, loop_->now()});
  // The link is its own seed: every flow crossing it (and their bottleneck
  // component) re-solves; everyone else keeps their rates and events.
  const LinkId seed = id;
  reallocate(PathView{&seed, 1});
}

void Network::insert_into_index(std::uint32_t slot) {
  const FlowParam& p = param_[slot];
  const bool normal = p.background_demand <= 0.0;
  const Bandwidth rate = hot_rate_[slot];
  std::vector<std::uint32_t>& pos = link_pos_[slot];
  pos.clear();  // capacity is recycled with the slot
  for (std::uint32_t k = 0; k < p.path.size(); ++k) {
    LinkIndex& li = links_[p.path[k].get()];
    pos.push_back(static_cast<std::uint32_t>(li.flows.size()));
    li.flows.push_back(LinkIndex::Member{slot, k});
    li.throughput += rate;
    if (normal) ++li.normal_count;
  }
}

void Network::remove_from_index(std::uint32_t slot) {
  const FlowParam& p = param_[slot];
  const bool normal = p.background_demand <= 0.0;
  const Bandwidth rate = hot_rate_[slot];
  const std::vector<std::uint32_t>& pos = link_pos_[slot];
  MCCS_ASSERT(pos.size() == p.path.size());
  for (std::uint32_t k = 0; k < p.path.size(); ++k) {
    LinkIndex& li = links_[p.path[k].get()];
    const std::uint32_t i = pos[k];
    MCCS_ASSERT(i < li.flows.size() && li.flows[i].slot == slot);
    // O(1) swap-remove at the backpointer position — the same position a
    // linear scan would find, so member order (and therefore the FP
    // accumulation order of the throughput refresh) evolves identically.
    const LinkIndex::Member moved = li.flows.back();
    li.flows[i] = moved;
    if (moved.slot != slot) link_pos_[moved.slot][moved.pos] = i;
    li.flows.pop_back();
    li.throughput -= rate;
    if (normal) {
      MCCS_ASSERT(li.normal_count > 0);
      --li.normal_count;
    }
  }
}

void Network::collect_component(PathView seed) {
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  auto mark_link = [this](LinkId l) {
    if (link_mark_[l.get()] != epoch_) {
      link_mark_[l.get()] = epoch_;
      comp_links_.push_back(l.get());
    }
  };
  // Seed links are always included (even if now memberless) so their index
  // throughput is refreshed after a removal.
  for (LinkId l : seed) mark_link(l);
  // BFS over links: any flow on a reached link joins the component and
  // contributes its own links to the frontier.
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    for (const LinkIndex::Member m : links_[comp_links_[i]].flows) {
      if (hot_mark_[m.slot] == epoch_) continue;
      hot_mark_[m.slot] = epoch_;
      comp_flows_.push_back(m.slot);
      for (LinkId l : param_[m.slot].path) mark_link(l);
    }
  }
  // Ascending-id order matches the reference path bit-for-bit (the solver's
  // floating-point results depend on per-link accumulation order).
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return param_[a].seq < param_[b].seq;
            });
}

void Network::collect_all() {
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  // The live list is ascending-id, so the collected set needs no sort.
  for (std::uint32_t s = live_head_; s != kNoSlot; s = live_next_[s]) {
    if (!allocatable(s)) continue;
    comp_flows_.push_back(s);
    for (LinkId l : param_[s].path) {
      if (link_mark_[l.get()] != epoch_) {
        link_mark_[l.get()] = epoch_;
        comp_links_.push_back(l.get());
      }
    }
  }
}

void Network::reallocate(PathView seed) {
  if (batch_depth_ > 0) {
    // Deferred: fold the seed into the batch's dirty-link union (the seed
    // views point at interned arena storage or at set_link_state's stack
    // slot, so the links are copied out here, synchronously) and solve once
    // at batch close. Zero virtual time elapses before that solve, so the
    // skipped intermediate rate states would have transferred zero bytes and
    // their completion events would all be superseded — the coalesced solve
    // is semantically identical (DESIGN.md §15).
    MCCS_CHECK(loop_->now() == batch_time_,
               "virtual time advanced inside a solve batch");
    for (LinkId l : seed) {
      if (batch_link_mark_[l.get()] != batch_epoch_) {
        batch_link_mark_[l.get()] = batch_epoch_;
        batch_seed_links_.push_back(l);
      }
    }
    ++batch_pending_;
    return;
  }
  solve_now(seed);
}

void Network::solve_now(PathView seed) {
  ++solves_total_;
  if (solves_counter_ != nullptr) solves_counter_->increment();
  solve_seed_ = seed;
  if (options_.incremental) {
    collect_component(seed);
  } else {
    collect_all();
    // Reference mode still refreshes the seed's links below even when they
    // lost their last member.
    for (LinkId l : seed) {
      if (link_mark_[l.get()] != epoch_) {
        link_mark_[l.get()] = epoch_;
        comp_links_.push_back(l.get());
      }
    }
  }
  allocate_component();
  solve_seed_ = {};
}

void Network::begin_batch() {
  if (!options_.coalesce) return;
  if (batch_depth_++ == 0) {
    batch_time_ = loop_->now();
    ++batch_epoch_;
    MCCS_ASSERT(batch_seed_links_.empty() && batch_pending_ == 0);
  }
}

void Network::end_batch() {
  if (!options_.coalesce) return;
  MCCS_CHECK(batch_depth_ > 0, "end_batch without a matching begin_batch");
  if (--batch_depth_ > 0) return;  // nested close: the outermost one solves
  if (batch_pending_ == 0) return;  // empty batch: nothing changed, no solve
  MCCS_CHECK(loop_->now() == batch_time_,
             "virtual time advanced inside a solve batch");
  ++batches_total_;
  coalesced_flows_total_ += batch_pending_;
  if (coalesced_counter_ != nullptr) {
    coalesced_counter_->increment(batch_pending_);
  }
  batch_pending_ = 0;
  // The union seed lives in batch_seed_links_ for the duration of the solve
  // (nothing appends while the depth is zero); one component discovery from
  // the union covers every flow any deferred mutation could have re-rated.
  solve_now(PathView{batch_seed_links_.data(), batch_seed_links_.size()});
  batch_seed_links_.clear();
}

void Network::allocate_component() {
  const Time now = loop_->now();

  // Canonicalize the collected link order. Discovery order depends on the
  // seed that reached the component (a single mutated path vs a batch's
  // dirty-link union), and the solver's bottleneck scan breaks exact
  // fair-share ties by iteration order — so without this, the same component
  // could freeze links in a different sequence and drift by an ulp depending
  // on how the mutations that produced it were grouped into solves. Sorted,
  // the solve is a pure function of component content (flows already walk in
  // ascending id order), which is what the batched/unbatched completion-time
  // identity rests on.
  std::sort(comp_links_.begin(), comp_links_.end());

  // Partition the collected flows into disjoint bottleneck sub-components
  // (union-find over their links). A multi-link seed — a completed or
  // cancelled flow's path, a failed link — can gather flows that share no
  // link with each other; each such sub-component's max-min solution only
  // involves its own links and flows, so solving them separately is
  // arithmetically identical to the joint solve, and independent solves can
  // run concurrently on the task pool. Rates, progress integration, and
  // completion events are applied serially afterwards in ascending flow-id
  // order, so the event-loop insertion order (and therefore every simulated
  // outcome) is independent of the thread count.
  for (std::uint32_t l : comp_links_) uf_parent_[l] = l;
  auto find_root = [this](std::uint32_t l) {
    while (uf_parent_[l] != l) {
      uf_parent_[l] = uf_parent_[uf_parent_[l]];  // path halving
      l = uf_parent_[l];
    }
    return l;
  };
  for (std::uint32_t s : comp_flows_) {
    const PathView p = param_[s].path;
    // `acc` stays a live root throughout (both operands of every union are
    // roots, and we keep the winner): re-parenting a non-root would silently
    // undo an earlier union and split the component.
    std::uint32_t acc = find_root(p.front().get());
    for (std::size_t i = 1; i < p.size(); ++i) {
      const std::uint32_t r = find_root(p[i].get());
      if (r == acc) continue;
      const std::uint32_t lo = std::min(acc, r);
      uf_parent_[std::max(acc, r)] = lo;
      acc = lo;
    }
  }
  // Sub-component order: ascending first-member flow id (deterministic).
  comp_roots_.clear();
  auto comp_of = [this](std::uint32_t root) {
    for (std::size_t i = 0; i < comp_roots_.size(); ++i) {
      if (comp_roots_[i] == root) return i;
    }
    comp_roots_.push_back(root);
    return comp_roots_.size() - 1;
  };
  for (std::uint32_t s : comp_flows_) {
    comp_of(find_root(param_[s].path.front().get()));
  }
  const std::size_t num_comps = comp_roots_.size();

  // The SubComp pool is high-water sized and cleared in place: inner vectors
  // keep their capacity, so a warm solve allocates nothing here.
  if (comps_.size() < num_comps) comps_.resize(num_comps);
  for (std::size_t i = 0; i < num_comps; ++i) {
    SubComp& sc = comps_[i];
    sc.background.clear();
    sc.normal.clear();
    sc.links.clear();
    sc.unsatisfied.clear();
    sc.bg_ok = true;
    sc.normal_ok = true;
    sc.dirty = false;
  }

  // Build each sub-component's flow lists in ascending id order (the order
  // the solver's floating point depends on) and hand it its own links.
  for (std::uint32_t s : comp_flows_) {
    const FlowParam& p = param_[s];
    SubComp& sc = comps_[comp_of(find_root(p.path.front().get()))];
    if (p.background_demand > 0.0) {
      sc.background.push_back(
          AllocFlow{s, p.path, p.background_demand, p.background_demand});
    } else {
      sc.normal.push_back(AllocFlow{s, p.path, p.weight, p.rate_cap});
    }
  }
  for (std::uint32_t l : comp_links_) {
    // Memberless links (e.g. the just-vacated path that seeded this solve)
    // belong to no sub-component; they only need the index refresh below.
    const std::uint32_t root = find_root(l);
    for (std::size_t i = 0; i < comp_roots_.size(); ++i) {
      if (comp_roots_[i] == root) {
        comps_[i].links.push_back(l);
        break;
      }
    }
  }
  // Mark the sub-components reachable from the solve's seed links as dirty.
  // Incremental collection only ever gathers seed-reachable flows, so every
  // sub-component is dirty there; reference mode collects everything and
  // this restores the same partition — see SubComp::dirty for why the
  // distinction must be identical across modes. A memberless seed link's
  // root is absent from comp_roots_ and marks nothing.
  for (const LinkId l : solve_seed_) {
    if (link_mark_[l.get()] != epoch_) continue;  // stale seed, not collected
    const std::uint32_t root = find_root(l.get());
    for (std::size_t i = 0; i < comp_roots_.size(); ++i) {
      if (comp_roots_[i] == root) {
        comps_[i].dirty = true;
        break;
      }
    }
  }

  // Solve the sub-components — concurrently when there are several and the
  // pool has width. The shared link-indexed scratch arrays (residual_,
  // weight_scratch_) are safe: disjoint sub-components touch disjoint link
  // entries. Background flows take their demand with strict priority first,
  // sharing capacity weighted by demand if oversubscribed; normal flows
  // max-min share the remainder.
  auto solve_one = [this](SubComp& sc) {
    for (std::uint32_t l : sc.links) {
      // Effective capacity folds in the administrative link state: degraded
      // links keep a fraction, down links contribute zero (their flows come
      // out of the solve at rate zero and simply stall — no completion
      // event).
      residual_[l] = topo_->link(LinkId{l}).capacity * capacity_scale_[l];
    }
    sc.bg_ok = max_min_allocate(sc.background, residual_, weight_scratch_,
                                sc.links, sc.unsatisfied);
    sc.normal_ok = max_min_allocate(sc.normal, residual_, weight_scratch_,
                                    sc.links, sc.unsatisfied);
  };
  // Only hand the solves to the pool when the reallocation is wide enough to
  // amortise a dispatch: the common incremental case — one small component of
  // a few flows — costs less than waking a worker. The partition above always
  // runs, and each sub-component's arithmetic is identical either way, so the
  // execution vehicle can never change a rate.
  constexpr std::size_t kParallelSolveMinFlows = 32;
  if (num_comps > 1 && comp_flows_.size() >= kParallelSolveMinFlows) {
    par::parallel_for(num_comps, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) solve_one(comps_[i]);
    });
  } else {
    for (std::size_t i = 0; i < num_comps; ++i) solve_one(comps_[i]);
  }

  unsatisfied_scratch_.clear();
  bool bg_ok = true;
  bool normal_ok = true;
  for (std::size_t i = 0; i < num_comps; ++i) {
    SubComp& sc = comps_[i];
    bg_ok = bg_ok && sc.bg_ok;
    normal_ok = normal_ok && sc.normal_ok;
    unsatisfied_scratch_.insert(unsatisfied_scratch_.end(),
                                sc.unsatisfied.begin(), sc.unsatisfied.end());
  }
  if (!bg_ok || !normal_ok) {
    ++allocation_error_count_;
    if (allocation_error_handler_) {
      AllocationError err;
      err.at = now;
      err.flows.reserve(unsatisfied_scratch_.size());
      for (std::uint32_t s : unsatisfied_scratch_) {
        err.flows.push_back(FlowId{param_[s].seq});
      }
      std::sort(err.flows.begin(), err.flows.end());
      // Fresh event: the handler may mutate the flow set (cancel the
      // offending flows, start replacements) without re-entering this solve.
      loop_->schedule_after(0.0, [this, err = std::move(err)] {
        if (allocation_error_handler_) allocation_error_handler_(err);
      });
    }
  }

  // Apply the solved rates serially, iterating comp_flows_ in ascending id
  // order across all sub-components (each sub-component's lists were built
  // in that same order, so per-component cursors walk them in lockstep).
  // This reproduces the exact completion-event insertion order of the
  // sequential solver regardless of how many threads solved above. A flow
  // in a clean sub-component whose rate is bitwise unchanged keeps its rate,
  // its un-integrated progress, and its already-scheduled completion event —
  // the lazy fast path that lets an untouched bottleneck component cost
  // nothing (a
  // component whose flow set did not change re-derives the identical bits:
  // the solve iterates flows in ascending id order, so its arithmetic
  // depends only on the component's content, never on the seed that found
  // it). Exact comparison, not an epsilon: a tolerance would let a flow keep
  // running at a stale near-equal rate, and *which* intermediate rate it
  // kept would depend on how the mutations that produced this state were
  // grouped into solves — breaking the batched/unbatched completion-time
  // identity that solve coalescing is built on.
  //
  // touch() runs BEFORE the fast-path continue for every flow in a dirty
  // sub-component. Progress integration r*(t1-t0) + r*(t2-t1) is not bitwise
  // equal to r*(t2-t0) in floating point, so *where* the integration
  // interval is split must itself be identical across solve groupings.
  // Touching every dirty-component flow pins the split points to "instants
  // at which this flow's component contained a mutated link" — a pure
  // function of the mutation timeline, not of whether a same-instant
  // up-then-back rate excursion was observed (one solve per mutation) or
  // coalesced away (one batched solve sees no net change), and not of
  // whether collection was component-scoped or global (reference mode
  // collects clean components too; their flows must keep their anchors).
  // Dirty-component flows also RE-DERIVE their completion event from the
  // fresh anchor even when the rate is unchanged: `t0 + rem(t0)/r` and
  // `t1 + rem(t1)/r` name the same mathematical instant but round
  // differently, so keeping an event computed from an older anchor while
  // the other grouping re-derives it (because it observed a transient
  // up-then-back rate excursion) would split the completion by one ulp.
  // The extra cost is two loads and a store per dirty flow, inside a loop
  // that already visits it, plus one event reschedule per dirty flow.
  comp_cursor_bg_.assign(num_comps, 0);
  comp_cursor_normal_.assign(num_comps, 0);
  for (std::uint32_t s : comp_flows_) {
    const FlowParam& p = param_[s];
    const std::size_t ci = comp_of(find_root(p.path.front().get()));
    SubComp& sc = comps_[ci];
    if (p.background_demand > 0.0) {
      const AllocFlow& a = sc.background[comp_cursor_bg_[ci]++];
      MCCS_ASSERT(a.slot == s);
      hot_rate_[s] = a.rate;
      continue;
    }
    const AllocFlow& a = sc.normal[comp_cursor_normal_[ci]++];
    MCCS_ASSERT(a.slot == s);
    const bool dirty = sc.dirty;
    if (dirty || a.rate != hot_rate_[s]) {
      touch(s, now);  // integrate at the old rate first
    }
    if (!dirty && a.rate == hot_rate_[s]) continue;
    hot_rate_[s] = a.rate;
    FlowCold& c = cold_[s];
    loop_->cancel(c.completion);
    c.completion = {};
    // Completion-instant clamp: a flow whose completion is already queued at
    // this very instant IS finished — see FlowCold::completion_at. Forcing
    // remaining to zero here makes the re-derived completion land at `now`
    // again (both branches below schedule "complete now" for remaining <= 0)
    // instead of one ulp later from quotient-rounding residue.
    if (c.completion_at == now) hot_remaining_[s] = 0.0;
    c.completion_at = kNoCompletion;
    if (options_.coalesce) {
      // Coalesce mode: defer to schedule_pending_completions, which groups
      // this solve's completions by exact instant. `now + eta` is
      // bit-for-bit the instant schedule_after(eta) would compute, so flows
      // that would have completed in one same-instant cascade of per-flow
      // events land in one group. A stalled flow (rate ~ 0, bytes left)
      // enrolls nowhere, exactly as it would have no event.
      leave_completion_cohort(s);
      PendingCompletion pc;
      pc.slot = s;
      if (hot_remaining_[s] <= 0.0) {
        pc.at = now + 0.0;  // == schedule_after(0.0)
      } else if (hot_rate_[s] > kRateEpsilon) {
        pc.at = now + hot_remaining_[s] / hot_rate_[s];
      } else {
        continue;
      }
      c.completion_at = pc.at;
      static_assert(sizeof(pc.bits) == sizeof(pc.at));
      std::memcpy(&pc.bits, &pc.at, sizeof(pc.bits));
      pending_completions_.push_back(pc);
      continue;
    }
    const std::uint32_t id = p.seq;
    if (hot_remaining_[s] <= 0.0) {
      // Already delivered; complete "now" (from a fresh event for re-entrancy).
      c.completion = loop_->schedule_after(0.0, [this, id] { complete_flow(id); });
      c.completion_at = now + 0.0;
    } else if (hot_rate_[s] > kRateEpsilon) {
      const Time eta = hot_remaining_[s] / hot_rate_[s];
      c.completion = loop_->schedule_after(eta, [this, id] { complete_flow(id); });
      c.completion_at = now + eta;  // bit-identical to schedule_after's instant
    }
  }

  if (options_.coalesce && !pending_completions_.empty()) {
    schedule_pending_completions();
  }

  // Refresh the touched links' monitored throughput from their members'
  // fresh rates (exact recomputation, so incremental updates cannot drift).
  // The utilization sampler integrates the *outgoing* rate over the interval
  // it was in force before the new one replaces it, and (enabled mode only)
  // drops a counter sample on the timeline when the rate actually changed.
  const bool record = telemetry_ != nullptr && telemetry_->enabled();
  if (record) counter_scratch_.clear();
  for (std::uint32_t l : comp_links_) {
    LinkIndex& li = links_[l];
    Bandwidth total = 0.0;
    for (const LinkIndex::Member m : li.flows) total += hot_rate_[m.slot];
    link_bytes_[l] += li.throughput * (now - link_sample_time_[l]);
    link_sample_time_[l] = now;
    if (record && total != li.throughput) {
      if (link_track_ < 0) {
        link_track_ = telemetry_->timeline().track("netsim", "links");
        link_counter_names_.resize(links_.size());
        for (std::size_t i = 0; i < links_.size(); ++i) {
          link_counter_names_[i] = "link" + std::to_string(i);
        }
        counter_scratch_.reserve(links_.size());
      }
      counter_scratch_.push_back(
          {link_counter_names_[l].c_str(), total * 8.0 / 1e9});
    }
    li.throughput = total;
  }
  if (record && !counter_scratch_.empty()) {
    // All links whose allocated rate changed in this reallocation, batched
    // into one "link_gbps" sample (a series per link in the counter chart).
    // Coalesced across same-virtual-instant cascades touching the same link
    // set: only the final rates of the burst survive.
    link_sample_event_ = telemetry_->timeline().counter(
        link_track_, "link_gbps", now, counter_scratch_.data(),
        counter_scratch_.data() + counter_scratch_.size(), link_sample_event_);
  }
}

void Network::emit_flow_span(std::uint32_t slot, bool completed) {
  if (telemetry_ == nullptr || !telemetry_->enabled()) return;
  const FlowCold& c = cold_[slot];
  if (param_[slot].background_demand > 0.0) return;  // background flows never end
  telemetry::Timeline& tl = telemetry_->timeline();
  if (flow_track_ < 0) flow_track_ = tl.track("netsim", "flows");
  // Lean on purpose (endpoints ride on the matching transport chunk_send
  // span): flow completion is the hottest netsim recording site.
  tl.span(flow_track_, "netsim",
          completed ? "flow" : "flow_cancelled", c.created, loop_->now(),
          {{"app", static_cast<std::int64_t>(c.spec.app.get())},
           {"bytes", static_cast<std::uint64_t>(c.spec.size)}});
}

void Network::complete_flow(std::uint32_t id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) return;
  hot_remaining_[slot] = 0.0;
  remove_from_index(slot);
  emit_flow_span(slot, /*completed=*/true);
  FlowSpec spec = std::move(cold_[slot].spec);
  const PathView path = param_[slot].path;  // interned: survives the slot
  release_slot(slot);
  reallocate(path);
  if (spec.on_complete) spec.on_complete(FlowId{id}, loop_->now());
}

}  // namespace mccs::net
