#pragma once
// Equal-cost multi-path routing over a Topology.
//
// For each (src, dst) node pair we enumerate *all* shortest paths in a
// deterministic order. A flow is mapped to one of them either by ECMP
// hashing (the cloud default the paper criticises) or by an explicit
// RouteId chosen by the provider (the source-routing / policy-based-routing
// analogue MCCS uses: the service stamps each RDMA connection's UDP source
// port and the switch maps it to a path).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "netsim/topology.h"

namespace mccs::net {

/// A path is the ordered list of links from src to dst.
using Path = std::vector<LinkId>;

class Routing {
 public:
  explicit Routing(const Topology& topo) : topo_(&topo) {}

  /// All equal-cost shortest paths from src to dst, deterministic order.
  /// Computed lazily and cached. Throws if dst is unreachable.
  const std::vector<Path>& paths(NodeId src, NodeId dst) const;

  /// Number of equal-cost paths between two nodes.
  [[nodiscard]] std::size_t path_count(NodeId src, NodeId dst) const {
    return paths(src, dst).size();
  }

  /// Select a path by explicit route id (modulo the path count, mirroring a
  /// switch policy table that wraps).
  const Path& by_route_id(NodeId src, NodeId dst, RouteId route) const {
    const auto& ps = paths(src, dst);
    return ps[route.get() % ps.size()];
  }

  /// Select a path by ECMP hash of a flow key.
  const Path& by_ecmp(NodeId src, NodeId dst, std::uint64_t flow_key) const {
    const auto& ps = paths(src, dst);
    return ps[ecmp_hash(flow_key) % ps.size()];
  }

  /// The hash an ECMP switch would apply (splitmix64 — uniform, deterministic).
  static std::uint64_t ecmp_hash(std::uint64_t key) {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  static std::uint64_t key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src.get()) << 32) | dst.get();
  }

  const Topology* topo_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

}  // namespace mccs::net
