#pragma once
// Equal-cost multi-path routing over a Topology.
//
// For each (src, dst) node pair we enumerate *all* shortest paths in a
// deterministic order. A flow is mapped to one of them either by ECMP
// hashing (the cloud default the paper criticises) or by an explicit
// RouteId chosen by the provider (the source-routing / policy-based-routing
// analogue MCCS uses: the service stamps each RDMA connection's UDP source
// port and the switch maps it to a path).
//
// Scaling: enumeration is restricted to the shortest-path DAG between the
// pair (forward distances from src intersected with backward distances from
// dst), so a 32k-endpoint Clos costs O(paths) per pair instead of exploring
// every same-depth dead end. The BFS distance labels are epoch-marked
// scratch reused across cache misses — path resolution performs no O(nodes)
// clearing and no allocation beyond the cached result itself.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "netsim/topology.h"

namespace mccs::net {

/// A path is the ordered list of links from src to dst.
using Path = std::vector<LinkId>;

/// Non-owning view of a path (a contiguous run of LinkIds). The Network
/// hands out views into its interned path arena, which lives as long as the
/// Network itself; views obtained from a `Path` are only as durable as that
/// vector. Implicit construction from `Path` keeps call sites symmetric.
class PathView {
 public:
  constexpr PathView() = default;
  constexpr PathView(const LinkId* data, std::size_t size)
      : data_(data), size_(static_cast<std::uint32_t>(size)) {}
  PathView(const Path& p)  // NOLINT(google-explicit-constructor)
      : PathView(p.data(), p.size()) {}

  [[nodiscard]] const LinkId* begin() const { return data_; }
  [[nodiscard]] const LinkId* end() const { return data_ + size_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] LinkId operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] LinkId front() const { return data_[0]; }
  [[nodiscard]] LinkId back() const { return data_[size_ - 1]; }
  /// Materialise an owning copy (for consumers that outlive the source).
  [[nodiscard]] Path to_path() const { return Path(begin(), end()); }

  friend bool operator==(PathView a, PathView b) {
    if (a.size_ != b.size_) return false;
    for (std::uint32_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

 private:
  const LinkId* data_ = nullptr;
  std::uint32_t size_ = 0;
};

class Routing {
 public:
  explicit Routing(const Topology& topo) : topo_(&topo) {}

  /// All equal-cost shortest paths from src to dst, deterministic order.
  /// Computed lazily and cached. Throws if dst is unreachable.
  const std::vector<Path>& paths(NodeId src, NodeId dst) const;

  /// Number of equal-cost paths between two nodes.
  [[nodiscard]] std::size_t path_count(NodeId src, NodeId dst) const {
    return paths(src, dst).size();
  }

  /// Select a path by explicit route id (modulo the path count, mirroring a
  /// switch policy table that wraps).
  const Path& by_route_id(NodeId src, NodeId dst, RouteId route) const {
    const auto& ps = paths(src, dst);
    return ps[route.get() % ps.size()];
  }

  /// Select a path by ECMP hash of a flow key.
  const Path& by_ecmp(NodeId src, NodeId dst, std::uint64_t flow_key) const {
    const auto& ps = paths(src, dst);
    return ps[ecmp_hash(flow_key) % ps.size()];
  }

  /// The hash an ECMP switch would apply (splitmix64 — uniform, deterministic).
  static std::uint64_t ecmp_hash(std::uint64_t key) {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  static std::uint64_t key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src.get()) << 32) | dst.get();
  }

  const Topology* topo_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;

  // Epoch-marked BFS scratch (forward distances from src, backward from
  // dst), reused across cache misses. Entries whose epoch tag is stale read
  // as "unreached" — no O(nodes) reset per pair. Routing is lazily mutable
  // like the cache itself: resolve paths on one thread (the parallel route
  // scorers pre-warm on the caller, see policy/flow_assign.cpp).
  struct BfsScratch {
    std::vector<std::uint32_t> dist;
    std::vector<std::uint64_t> epoch;
    std::uint64_t current = 0;
    std::vector<NodeId> queue;
  };
  mutable BfsScratch fwd_;
  mutable BfsScratch rev_;
};

}  // namespace mccs::net
