#pragma once
// Flow-level network simulation.
//
// The Network owns the set of active flows and allocates bandwidth with
// weighted max-min fairness (progressive filling), the same model the paper's
// large-scale simulator uses ("our flow-level simulator assumes per-flow
// fairness", §6.5). Rates change only when the flow set changes — flow
// start, completion, cancellation, pause/resume (used by the traffic-
// scheduling QoS policy), or a background-flow change — at which point
// completion events are rescheduled on the EventLoop.
//
// Two flow classes:
//  * normal flows — carry a finite number of bytes; max-min fair share.
//  * background flows — model non-collective traffic (e.g., the 75 Gbps
//    flow in Fig. 7). They demand a fixed rate with strict priority over
//    normal flows, mirroring how external traffic appears to a tenant.

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "netsim/routing.h"
#include "netsim/topology.h"
#include "sim/event_loop.h"

namespace mccs::net {

struct FlowSpec {
  NodeId src;
  NodeId dst;
  Bytes size = 0;  ///< Payload bytes; ignored for background flows.

  /// Explicit path selector; invalid() means the switch applies ECMP hashing
  /// of `ecmp_key` (the multi-tenant-cloud default).
  RouteId route{};
  std::uint64_t ecmp_key = 0;

  /// Per-flow rate cap, e.g. a 50 Gbps virtual NIC (IB traffic-class rate
  /// limit in the testbed). Infinity = uncapped.
  Bandwidth rate_cap = std::numeric_limits<Bandwidth>::infinity();

  /// Fairness weight (per-flow fairness => 1.0).
  double weight = 1.0;

  /// Fixed delay before bytes start moving (propagation + connection setup).
  Time start_latency = 0.0;

  /// Background flow: demands `background_demand` bytes/s forever with
  /// strict priority; `size` and completion callbacks are unused.
  Bandwidth background_demand = 0.0;

  // Metadata consumed by policies / tracing.
  AppId app{};
  JobId job{};

  /// Invoked from the event loop when the last byte is delivered.
  std::function<void(FlowId, Time)> on_complete;
};

class Network {
 public:
  Network(sim::EventLoop& loop, const Topology& topo)
      : loop_(&loop), topo_(&topo), routing_(topo) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const Routing& routing() const { return routing_; }
  [[nodiscard]] sim::EventLoop& loop() { return *loop_; }

  /// Start a flow; the path is resolved immediately (route id or ECMP).
  FlowId start_flow(FlowSpec spec);

  /// Cancel a flow (e.g., tearing down peer-to-peer connections during a
  /// reconfiguration). No completion callback fires.
  void cancel_flow(FlowId id);

  /// Gate a flow off/on without losing progress (traffic-scheduling QoS).
  void pause_flow(FlowId id);
  void resume_flow(FlowId id);

  [[nodiscard]] bool flow_active(FlowId id) const { return flows_.count(id.get()) > 0; }
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;
  [[nodiscard]] Bytes flow_remaining(FlowId id) const;
  [[nodiscard]] const Path& flow_path(FlowId id) const;
  [[nodiscard]] std::size_t active_flow_count() const { return flows_.size(); }

  /// Instantaneous throughput over a link (sum of flow rates), for the
  /// provider's monitoring plane.
  [[nodiscard]] Bandwidth link_throughput(LinkId id) const;

  /// Number of normal flows currently traversing a link.
  [[nodiscard]] std::size_t link_flow_count(LinkId id) const;

 private:
  struct FlowState {
    FlowSpec spec;
    Path path;
    double remaining = 0.0;  ///< bytes left; tracked as double for fluid model
    Bandwidth rate = 0.0;
    bool started = false;    ///< start_latency elapsed
    bool paused = false;
    sim::EventLoop::Handle completion;
    sim::EventLoop::Handle activation;
  };

  [[nodiscard]] bool allocatable(const FlowState& f) const {
    return f.started && !f.paused;
  }

  /// Bring all flow byte counters up to `loop_->now()`.
  void advance_progress();

  /// Recompute all rates and reschedule completion events.
  void reallocate();

  void complete_flow(std::uint32_t id);
  void activate_flow(std::uint32_t id);

  sim::EventLoop* loop_;
  const Topology* topo_;
  Routing routing_;
  std::unordered_map<std::uint32_t, FlowState> flows_;
  std::uint32_t next_flow_id_ = 0;
  Time last_progress_time_ = 0.0;
};

}  // namespace mccs::net
