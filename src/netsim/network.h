#pragma once
// Flow-level network simulation.
//
// The Network owns the set of active flows and allocates bandwidth with
// weighted max-min fairness (progressive filling), the same model the paper's
// large-scale simulator uses ("our flow-level simulator assumes per-flow
// fairness", §6.5). Rates change only when the flow set changes — flow
// start, completion, cancellation, pause/resume (used by the traffic-
// scheduling QoS policy), or a background-flow change — at which point
// completion events are rescheduled on the EventLoop.
//
// Two flow classes:
//  * normal flows — carry a finite number of bytes; max-min fair share.
//  * background flows — model non-collective traffic (e.g., the 75 Gbps
//    flow in Fig. 7). They demand a fixed rate with strict priority over
//    normal flows, mirroring how external traffic appears to a tenant.
//
// Scaling: per-event cost is proportional to the *bottleneck component* of
// the changed flow, not the whole flow set. The Network maintains a per-link
// index (flow members, Σrate, normal-flow count), so a flow-set change only
// re-solves max-min over the flows transitively sharing a link with the
// changed flow; all other flows keep their rates and — critically — their
// already-scheduled completion events. Progress is integrated lazily per
// flow (`last_update`), so unaffected flows pay nothing. The global solver
// remains available as a cross-validation oracle via
// `Options::incremental = false`; both paths order flows identically
// (ascending id), so they produce bit-identical rates on disjoint
// components (see tests/test_netsim_properties.cpp).
//
// Storage (DESIGN.md §12): flow state lives in a slab of reusable slots
// (same idiom as sim::EventLoop), split into a hot SoA section — the four
// fields every solve touches, in dense parallel arrays — and a cold section
// (FlowSpec with its callbacks, telemetry fields, event handles) read only
// at flow boundaries. Flow ids are a monotone sequence that is never reused,
// so a stale id can never alias a recycled slot; `id_to_slot_` maps ids to
// live slots (or nothing). Paths are interned into a chunked link-id arena
// with stable addresses and referenced by PathView — flows on the same
// cached route share one copy. Per-link membership removal is O(path) via
// per-(flow,link) backpointers instead of a scan. At steady state (warm
// slab, warm scratch) a start/complete cycle performs no heap allocation in
// `reallocate` (guarded by tests/test_netsim_slab.cpp).

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "netsim/routing.h"
#include "netsim/topology.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"

namespace mccs::net {

struct FlowSpec {
  NodeId src;
  NodeId dst;
  Bytes size = 0;  ///< Payload bytes; ignored for background flows.

  /// Explicit path selector; invalid() means the switch applies ECMP hashing
  /// of `ecmp_key` (the multi-tenant-cloud default).
  RouteId route{};
  std::uint64_t ecmp_key = 0;

  /// Per-flow rate cap, e.g. a 50 Gbps virtual NIC (IB traffic-class rate
  /// limit in the testbed). Infinity = uncapped.
  Bandwidth rate_cap = std::numeric_limits<Bandwidth>::infinity();

  /// Fairness weight (per-flow fairness => 1.0).
  double weight = 1.0;

  /// Fixed delay before bytes start moving (propagation + connection setup).
  Time start_latency = 0.0;

  /// Background flow: demands `background_demand` bytes/s forever with
  /// strict priority; `size` and completion callbacks are unused.
  Bandwidth background_demand = 0.0;

  // Metadata consumed by policies / tracing.
  AppId app{};
  JobId job{};

  /// Invoked from the event loop when the last byte is delivered.
  std::function<void(FlowId, Time)> on_complete;
};

/// Administrative state of a physical link (fault injection). A down link
/// contributes zero capacity: flows crossing it keep their bytes and simply
/// stall at rate zero (no completion event) until the link recovers or the
/// flow is cancelled — never a silent completion. A degraded link keeps a
/// fraction of its nominal capacity; the rescale flows through the same
/// incremental max-min path as any other flow-set change.
enum class LinkState { kUp, kDegraded, kDown };

/// One administrative link-state transition, in the order it was applied.
/// The bounded log lets control-plane consumers (the incremental flow
/// assigner) learn exactly which links changed since their last look —
/// a change-set export, so re-solve work scales with events, not links.
struct LinkChange {
  LinkId link{};
  LinkState state = LinkState::kUp;
  double capacity_fraction = 1.0;
  Time at = 0.0;
};

/// Structured outcome of a max-min solve that could not make progress (a
/// pathological capacity state, e.g. a weight so small the share-per-weight
/// overflows). The affected flows are pinned at rate zero — degrading the
/// tenants that own them — instead of killing the whole multi-tenant service
/// with a contract violation.
struct AllocationError {
  Time at = 0.0;
  std::vector<FlowId> flows;  ///< pinned at rate zero, ascending id
};

class Network {
 public:
  struct Options {
    /// Component-scoped reallocation (the fast path). Off = re-solve the
    /// global max-min program on every flow-set change — the reference
    /// oracle the property tests cross-validate against.
    bool incremental = true;
    /// Same-instant solve coalescing: begin_batch()/end_batch() defer the
    /// per-mutation re-solve and run one union solve at batch close, and
    /// latent flows sharing an exact activation instant activate through one
    /// cohort event inside an internal batch. Semantically identical (zero
    /// virtual time elapses between the deferred mutations, so the skipped
    /// intermediate rate states transfer zero bytes — see DESIGN.md §15).
    /// Off = every batch is a no-op and activations stay per-flow events:
    /// the unbatched column the coalescing property tests and the bench's
    /// solves-per-event comparison run against.
    bool coalesce = true;
  };

  Network(sim::EventLoop& loop, const Topology& topo)
      : Network(loop, topo, Options{}) {}

  Network(sim::EventLoop& loop, const Topology& topo, Options options)
      : loop_(&loop),
        topo_(&topo),
        routing_(topo),
        options_(options),
        links_(topo.link_count()),
        link_states_(topo.link_count(), LinkState::kUp),
        capacity_scale_(topo.link_count(), 1.0),
        link_mark_(topo.link_count(), 0),
        batch_link_mark_(topo.link_count(), 0),
        residual_(topo.link_count(), 0.0),
        weight_scratch_(topo.link_count(), 0.0),
        uf_parent_(topo.link_count(), 0),
        link_bytes_(topo.link_count(), 0.0),
        link_sample_time_(topo.link_count(), 0.0) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const Routing& routing() const { return routing_; }
  [[nodiscard]] sim::EventLoop& loop() { return *loop_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Pre-size the flow slab and per-event scratch so a scale run (or the
  /// zero-allocation guard test) reaches steady state without growth:
  /// `concurrent` bounds simultaneously-live flows, `lifetime` bounds flow
  /// ids ever issued. Optional — the structures grow on demand otherwise.
  void reserve_flows(std::size_t concurrent, std::size_t lifetime);

  /// Per-flow-state slab cost in bytes, by temperature class: `hot` is the
  /// SoA touched every rate solve (remaining / rate / last_update / mark),
  /// `param` the per-flow solve parameters (path view, caps, weight, flags),
  /// `cold` everything touched only at start/completion (spec, timestamps,
  /// event handles). Compile-time facts surfaced for the scale bench, which
  /// reports bytes-per-flow-state alongside events/s.
  struct StorageFootprint {
    std::size_t hot = 0;
    std::size_t param = 0;
    std::size_t cold = 0;
    [[nodiscard]] std::size_t total() const { return hot + param + cold; }
  };
  [[nodiscard]] static StorageFootprint flow_state_footprint();

  // --- batched-mutation epochs ----------------------------------------------
  // A solve batch coalesces every flow-set mutation issued at one virtual
  // instant into a single component discovery + max-min solve at batch
  // close. Inside a batch, start/cancel/pause/resume/set_link_state apply
  // their structural change immediately (indexes, the link-change log,
  // tombstones) but defer the re-solve, accumulating the union of dirty
  // seed links; rates read mid-batch are the pre-batch ones. Batches nest
  // (the outermost close solves) and MUST NOT span virtual time: the
  // zero-elapsed-time identity argument — intermediate rates transfer zero
  // bytes, and completion events scheduled mid-batch would be superseded by
  // the final solve — only holds at one instant, so end_batch checks the
  // clock did not move. An empty batch (no deferred mutation) solves
  // nothing. With Options::coalesce off both calls are no-ops.

  void begin_batch();
  void end_batch();

  /// RAII batch scope: `Network::SolveBatch batch(net);` around a burst of
  /// same-instant mutations (a collective launch, a mass cancel, a fault
  /// epoch).
  class SolveBatch {
   public:
    explicit SolveBatch(Network& net) : net_(&net) { net_->begin_batch(); }
    ~SolveBatch() { net_->end_batch(); }
    SolveBatch(const SolveBatch&) = delete;
    SolveBatch& operator=(const SolveBatch&) = delete;

   private:
    Network* net_;
  };

  /// Max-min solves actually run (each allocate_component pass). Mirrored to
  /// the metrics registry as `netsim_solves_total` when telemetry is
  /// attached. With coalescing, a batch of N same-instant mutations pays 1.
  [[nodiscard]] std::uint64_t solves_total() const { return solves_total_; }
  /// Mutations whose re-solve was absorbed into a batch-close union solve
  /// (registry name: `netsim_coalesced_flows_total`).
  [[nodiscard]] std::uint64_t coalesced_flows_total() const {
    return coalesced_flows_total_;
  }
  /// Non-empty batch closes (mean batch width = coalesced / batches).
  [[nodiscard]] std::uint64_t batches_total() const { return batches_total_; }

  /// Start a flow; the path is resolved immediately (route id or ECMP).
  FlowId start_flow(FlowSpec spec);

  /// Cancel a flow (e.g., tearing down peer-to-peer connections during a
  /// reconfiguration). No completion callback fires.
  void cancel_flow(FlowId id);

  /// Gate a flow off/on without losing progress (traffic-scheduling QoS).
  void pause_flow(FlowId id);
  void resume_flow(FlowId id);

  /// Liveness by id. Ids are never reused, so a cancelled/completed flow's id
  /// stays dead forever even after its slab slot is recycled. O(1).
  [[nodiscard]] bool flow_active(FlowId id) const {
    return slot_of(id.get()) != kNoSlot;
  }
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;
  [[nodiscard]] Bytes flow_remaining(FlowId id) const;
  /// View of the flow's path in the shared link-id arena. Stable for the
  /// lifetime of the Network (paths are interned, never freed); copy with
  /// `.to_path()` for consumers that outlive it.
  [[nodiscard]] PathView flow_path(FlowId id) const;
  [[nodiscard]] const FlowSpec& flow_spec(FlowId id) const;
  [[nodiscard]] std::size_t active_flow_count() const { return live_count_; }
  /// All live flow ids, ascending (diagnostics / debug dumps). Served by
  /// walking the slab's live list, which is insertion-ordered — and insertion
  /// order is id order because ids are monotone. No sort, no hashing.
  [[nodiscard]] std::vector<FlowId> active_flows() const;

  // --- fault injection -------------------------------------------------------
  /// Administratively change a link's state. kDegraded keeps
  /// `capacity_fraction` (in (0, 1]) of the nominal capacity; kDown drops it
  /// to zero (flows crossing the link stall); kUp restores it. Rates of the
  /// affected bottleneck component are recomputed immediately.
  void set_link_state(LinkId id, LinkState state, double capacity_fraction = 1.0);
  [[nodiscard]] LinkState link_state(LinkId id) const {
    MCCS_EXPECTS(id.get() < link_states_.size());
    return link_states_[id.get()];
  }
  [[nodiscard]] double link_capacity_fraction(LinkId id) const {
    MCCS_EXPECTS(id.get() < capacity_scale_.size());
    return capacity_scale_[id.get()];
  }

  // --- link-change log -------------------------------------------------------
  // Every effective set_link_state in application order (no-op calls are not
  // logged), addressed by a monotone absolute index that survives trimming.
  // Consumers register a cursor and acknowledge what they have processed;
  // entries acknowledged by *every* consumer are trimmed in batches, so the
  // log's memory is bounded by the slowest consumer's lag (soak-tested over
  // ~10k flaps). With no registered consumer the log is kept whole, so a
  // consumer that registers late (the controller enables incremental mode
  // mid-run) still observes every change since construction.

  /// Register a consumer whose cursor starts at the oldest retained entry.
  [[nodiscard]] int register_link_change_consumer();

  /// A cursor-resume request that landed below the oldest retained entry:
  /// the history between `requested` and `earliest` was trimmed away, so a
  /// warm resume is impossible. Returned (never silently absorbed) so the
  /// consumer can rebuild from scratch instead of replaying with a gap.
  struct TrimmedHistory {
    std::size_t requested = 0;  ///< the cursor the consumer asked for
    std::size_t earliest = 0;   ///< oldest absolute index still retained
  };
  struct LinkChangeRegistration {
    int consumer = -1;  ///< valid only when !trimmed
    bool trimmed = false;
    TrimmedHistory gap;  ///< meaningful only when trimmed
    [[nodiscard]] bool ok() const { return !trimmed; }
  };
  /// Register a consumer resuming at an absolute cursor (crash/restart
  /// recovery: the cursor comes from the dead consumer's snapshot). Succeeds
  /// iff every entry from `cursor` onward is still retained; otherwise the
  /// registration is REFUSED with the trimmed-history gap — the caller must
  /// rebuild its derived state cold rather than replay across a hole.
  /// `cursor` may not exceed link_change_end().
  [[nodiscard]] LinkChangeRegistration register_link_change_consumer_at(
      std::size_t cursor);
  /// Release a consumer's cursor (clean shutdown or lease expiry after a
  /// crash) so it no longer pins the log against trimming. The consumer id
  /// is dead afterwards; released slots are never reused.
  void unregister_link_change_consumer(int consumer);
  /// One past the newest change's absolute index.
  [[nodiscard]] std::size_t link_change_end() const {
    return link_change_base_ + link_changes_.size();
  }
  /// Entry by absolute index; must be >= the consumer's acknowledged cursor
  /// (trimming never outruns the slowest cursor).
  [[nodiscard]] const LinkChange& link_change(std::size_t abs_index) const {
    MCCS_EXPECTS(abs_index >= link_change_base_ &&
                 abs_index < link_change_end());
    return link_changes_[abs_index - link_change_base_];
  }
  /// The consumer's acknowledged cursor — the absolute index to resume from.
  [[nodiscard]] std::size_t link_change_cursor(int consumer) const {
    MCCS_EXPECTS(consumer >= 0 && static_cast<std::size_t>(consumer) <
                                      link_change_cursors_.size());
    MCCS_EXPECTS(link_change_cursors_[static_cast<std::size_t>(consumer)] !=
                 kReleasedCursor);
    return link_change_cursors_[static_cast<std::size_t>(consumer)];
  }
  /// Mark entries below `upto` as processed by `consumer`; may trim.
  void ack_link_changes(int consumer, std::size_t upto);
  /// Entries currently held in memory (bounded-growth soak assertions).
  [[nodiscard]] std::size_t link_changes_retained() const {
    return link_changes_.size();
  }

  /// Observer for unsatisfiable allocations (see AllocationError). Invoked
  /// from a fresh event-loop event, so the handler may start/cancel flows.
  void set_allocation_error_handler(std::function<void(const AllocationError&)> h) {
    allocation_error_handler_ = std::move(h);
  }
  [[nodiscard]] std::uint64_t allocation_error_count() const {
    return allocation_error_count_;
  }

  /// Instantaneous throughput over a link (sum of flow rates), for the
  /// provider's monitoring plane. O(1): served from the per-link index.
  [[nodiscard]] Bandwidth link_throughput(LinkId id) const {
    MCCS_EXPECTS(id.get() < links_.size());
    return links_[id.get()].throughput;
  }

  /// Number of normal (non-background) flows currently traversing a link.
  /// O(1): served from the per-link index.
  [[nodiscard]] std::size_t link_flow_count(LinkId id) const {
    MCCS_EXPECTS(id.get() < links_.size());
    return links_[id.get()].normal_count;
  }

  /// Attach fabric telemetry: flow-lifetime spans and per-link allocated-rate
  /// counter samples land on the timeline when it is enabled. The utilization
  /// integral behind link_bytes() is maintained regardless (it only reads the
  /// throughput the solver already computed, so it cannot perturb the sim).
  /// Also binds the always-live `netsim_solves_total` /
  /// `netsim_coalesced_flows_total` registry counters.
  void set_telemetry(telemetry::Telemetry* t);

  /// Cumulative bytes carried by a link (allocated-rate integral up to now),
  /// for the provider's monitoring plane and telemetry snapshots.
  [[nodiscard]] double link_bytes(LinkId id) const {
    MCCS_EXPECTS(id.get() < links_.size());
    return link_bytes_[id.get()] +
           links_[id.get()].throughput * (loop_->now() - link_sample_time_[id.get()]);
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Cold per-flow state: read at flow boundaries (start / completion /
  /// cancel / telemetry), never inside a solve.
  /// Sentinel for "no completion scheduled" in FlowCold::completion_at.
  static constexpr Time kNoCompletion = std::numeric_limits<Time>::infinity();

  struct FlowCold {
    FlowSpec spec;
    Time created = 0.0;  ///< start_flow time (telemetry span begin)
    /// The instant the flow's completion is scheduled at (bit pattern of the
    /// queued event's time), or kNoCompletion. A solve that re-derives the
    /// flow's rate at exactly this instant treats the flow as done instead
    /// of re-integrating its remaining bytes: `now + rem/rate` rounds, so
    /// integrating back rarely recovers exactly zero, and without the clamp
    /// an unrelated same-instant mutation would push the completion one ulp
    /// past the instant the event queue already holds.
    Time completion_at = kNoCompletion;
    sim::EventLoop::Handle completion;
    sim::EventLoop::Handle activation;  ///< per-flow mode (coalesce off) only
    /// Cohort membership (coalesce on). A flow is in at most one cohort at a
    /// time, and the phase disambiguates what the key means: latent
    /// (!started) = activation cohort (key = activation-instant Time bits);
    /// started = completion cohort (key = pool index into
    /// completion_cohorts_). The two phases never overlap, so the fields are
    /// shared.
    std::uint64_t cohort_key = 0;
    bool in_cohort = false;  ///< member of an activation/completion cohort
  };

  /// Warm per-flow parameters: what component discovery and the solver need
  /// besides the hot arrays (path, class, weight/cap, gating state).
  struct FlowParam {
    PathView path;
    Bandwidth rate_cap = 0.0;
    double weight = 1.0;
    Bandwidth background_demand = 0.0;
    std::uint32_t seq = 0;   ///< external flow id (monotone, never reused)
    bool started = false;    ///< start_latency elapsed
    bool paused = false;
  };

  /// Per-link view of the allocatable flows crossing it, maintained on every
  /// flow add/remove/pause/resume and refreshed when rates change. `pos` is
  /// the member flow's hop index on its own path — the backpointer slot in
  /// link_pos_ that makes swap-removal O(1).
  struct LinkIndex {
    struct Member {
      std::uint32_t slot;
      std::uint32_t pos;
    };
    std::vector<Member> flows;  ///< allocatable members (both classes)
    Bandwidth throughput = 0.0; ///< Σ rate over `flows`
    std::size_t normal_count = 0;  ///< members with no background demand
  };

  [[nodiscard]] std::uint32_t slot_of(std::uint32_t id) const {
    return id < id_to_slot_.size() ? id_to_slot_[id] : kNoSlot;
  }
  [[nodiscard]] std::uint32_t checked_slot(std::uint32_t id) const {
    const std::uint32_t s = slot_of(id);
    MCCS_EXPECTS(s != kNoSlot);
    return s;
  }

  [[nodiscard]] bool allocatable(std::uint32_t slot) const {
    const FlowParam& p = param_[slot];
    return p.started && !p.paused;
  }

  /// Integrate a flow's progress up to `now` at its current rate.
  void touch(std::uint32_t slot, Time now) {
    if (now > hot_last_update_[slot] && param_[slot].background_demand <= 0.0) {
      hot_remaining_[slot] = std::max(
          0.0, hot_remaining_[slot] -
                   hot_rate_[slot] * (now - hot_last_update_[slot]));
    }
    hot_last_update_[slot] = now;
  }

  /// Copy `p` into the link-id arena (once per distinct routing-cache entry;
  /// the cache's Path addresses are stable, so identity-keying is sound).
  PathView intern_path(const Path& p);

  std::uint32_t acquire_slot();      ///< from the free list, else grown
  void release_slot(std::uint32_t slot);  ///< unlink, clear cold, recycle

  void insert_into_index(std::uint32_t slot);
  void remove_from_index(std::uint32_t slot);

  /// Gather the connected component of allocatable flows reachable from
  /// `seed` through shared links into comp_flows_ (slots, ascending flow id)
  /// and comp_links_. Reference mode gathers everything.
  void collect_component(PathView seed);
  void collect_all();

  /// Re-solve max-min over comp_flows_ / comp_links_ and apply: rates,
  /// link-index throughput, and completion events (kept when the rate is
  /// unchanged within kRateEpsilon).
  void allocate_component();

  /// Flow-set change entry point: scope to `seed`'s component (or everything
  /// in reference mode) and re-allocate — or, inside an open batch, merge
  /// `seed` into the pending union and defer the solve to batch close.
  /// Allocation-free at steady state.
  void reallocate(PathView seed);

  /// The undeferred body of reallocate (collect + allocate + count).
  void solve_now(PathView seed);

  void complete_flow(std::uint32_t id);
  void activate_flow(std::uint32_t id);
  /// Activate every surviving member of the cohort keyed by `key` (one
  /// virtual instant) inside an internal batch: one solve for the burst.
  void activate_cohort(std::uint64_t key);

  /// Turn the solve's deferred completion list (pending_completions_) into
  /// loop events: flows due at a bit-identical instant share one cohort
  /// event, the rest get the classic per-flow event. Coalesce mode only.
  void schedule_pending_completions();
  /// Remove `slot` from its completion cohort, if any (pause / cancel / rate
  /// change); a cohort whose last member leaves drops its event.
  void leave_completion_cohort(std::uint32_t slot);
  /// Complete every surviving member of completion cohort `idx` — in
  /// enrollment order, inside an internal batch: one solve for the whole
  /// same-instant completion cascade instead of one per flow.
  void drain_completion_cohort(std::uint32_t idx);

  void maybe_trim_link_changes();

  /// Timeline span for a flow that just left the network (delivered or
  /// cancelled). No-op unless telemetry is enabled.
  void emit_flow_span(std::uint32_t slot, bool completed);

  sim::EventLoop* loop_;
  const Topology* topo_;
  Routing routing_;
  Options options_;

  // --- flow slab -------------------------------------------------------------
  // Parallel arrays indexed by slot. Hot SoA section first: the fields every
  // solve reads/writes, kept dense so a component walk stays cache-resident.
  std::vector<double> hot_remaining_;    ///< bytes left as of last_update
  std::vector<Bandwidth> hot_rate_;
  std::vector<Time> hot_last_update_;    ///< when remaining was integrated
  std::vector<std::uint64_t> hot_mark_;  ///< component-BFS visit epoch
  std::vector<FlowParam> param_;
  std::vector<FlowCold> cold_;
  /// Backpointers: link_pos_[slot][k] = this flow's index in
  /// links_[path[k]].flows while the flow is in the index. The inner vectors
  /// are recycled with their slot, so a warm slab never reallocates them.
  std::vector<std::vector<std::uint32_t>> link_pos_;
  /// Insertion-ordered doubly-linked list of live slots (== ascending id).
  std::vector<std::uint32_t> live_next_;
  std::vector<std::uint32_t> live_prev_;
  std::uint32_t live_head_ = kNoSlot;
  std::uint32_t live_tail_ = kNoSlot;
  std::size_t live_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  /// External id -> slot (kNoSlot once the flow is gone). Ids are issued
  /// sequentially, so this is a flat array, not a hash.
  std::vector<std::uint32_t> id_to_slot_;
  std::uint32_t next_flow_id_ = 0;

  // --- path arena ------------------------------------------------------------
  static constexpr std::size_t kArenaBlockLinks = 4096;
  std::vector<std::unique_ptr<LinkId[]>> path_arena_;
  std::size_t arena_used_ = 0;  ///< links used in the newest block
  std::unordered_map<const Path*, PathView> path_intern_;

  std::vector<LinkIndex> links_;
  std::vector<LinkState> link_states_;
  std::vector<double> capacity_scale_;  ///< effective = nominal * scale

  // Bounded change-set export (see the link-change log section above).
  /// Sentinel for a released consumer slot: skipped by the min-ack trim scan
  /// and rejected by cursor reads/acks. Slots are never reused, so a stale
  /// consumer id from before a release fails loudly instead of aliasing.
  static constexpr std::size_t kReleasedCursor =
      static_cast<std::size_t>(-1);
  std::vector<LinkChange> link_changes_;
  std::size_t link_change_base_ = 0;  ///< absolute index of link_changes_[0]
  std::vector<std::size_t> link_change_cursors_;  ///< per-consumer acks

  std::function<void(const AllocationError&)> allocation_error_handler_;
  std::uint64_t allocation_error_count_ = 0;
  std::vector<std::uint32_t> unsatisfied_scratch_;

  // Scratch for component discovery + allocation (persistent to avoid O(L)
  // work per event; only entries for comp_links_ are ever read or written).
  std::vector<std::uint32_t> comp_flows_;  ///< slots, ascending flow id
  std::vector<std::uint32_t> comp_links_;
  std::vector<std::uint64_t> link_mark_;
  std::uint64_t epoch_ = 0;

  // --- batched-mutation epochs ----------------------------------------------
  // Deferred-solve state for an open batch. The dirty seed union is deduped
  // through its own mark array (link_mark_/epoch_ belong to
  // collect_component, which the batch-close solve itself consumes).
  int batch_depth_ = 0;
  Time batch_time_ = 0.0;           ///< outermost begin_batch instant
  std::size_t batch_pending_ = 0;   ///< deferred mutations in the open batch
  std::vector<LinkId> batch_seed_links_;
  std::vector<std::uint64_t> batch_link_mark_;
  std::uint64_t batch_epoch_ = 0;

  /// Latent flows grouped by exact activation instant (the Time's bit
  /// pattern): the first member schedules the one activation event — at the
  /// event-loop seq its own per-flow activation would have held — and the
  /// cohort activates every surviving member in one batch. `live` counts
  /// members not yet cancelled, so a fully-cancelled cohort drops its event
  /// from the loop just as per-flow cancellation would.
  struct ActivationCohort {
    std::vector<std::uint32_t> ids;  ///< external flow ids, in start order
    std::size_t live = 0;
    sim::EventLoop::Handle event;
  };
  std::unordered_map<std::uint64_t, ActivationCohort> activation_cohorts_;

  /// Flows one solve left due to complete at one exact instant (equal Time
  /// bit pattern — the symmetric-rate cascade), again replacing N
  /// same-instant loop events with one. Cohorts form per solve: a cross-solve
  /// bit collision simply yields two events at that instant, in solve order —
  /// exactly the per-flow insertion order. Members are erased from `ids`
  /// eagerly on leave (pause, cancel, rate change): enrollment order is the
  /// per-flow event insertion order and must stay exact. Records live in a
  /// high-water pool (cohort_key holds the pool index while enrolled) and the
  /// grouping/drain scratch persists, so steady-state churn allocates
  /// nothing.
  struct CompletionCohort {
    std::vector<std::uint32_t> ids;  ///< external flow ids, enrollment order
    sim::EventLoop::Handle event;
    bool draining = false;  ///< member list moved out; leave = flag reset only
  };
  std::vector<CompletionCohort> completion_cohorts_;  ///< pool, never shrunk
  std::vector<std::uint32_t> free_cohorts_;           ///< recycled pool slots
  struct PendingCompletion {
    std::uint64_t bits;  ///< completion-instant Time bit pattern (group key)
    std::uint32_t slot;
    Time at;
  };
  std::vector<PendingCompletion> pending_completions_;  ///< apply-order, per solve
  std::vector<std::uint32_t> pending_order_;            ///< grouping sort scratch
  std::vector<std::uint32_t> drain_ids_;                ///< drain walk scratch

  std::uint64_t solves_total_ = 0;
  std::uint64_t coalesced_flows_total_ = 0;
  std::uint64_t batches_total_ = 0;
  telemetry::Counter* solves_counter_ = nullptr;
  telemetry::Counter* coalesced_counter_ = nullptr;

  std::vector<Bandwidth> residual_;
  std::vector<double> weight_scratch_;

  // Disjoint sub-component partition of a collected flow set (union-find
  // over links + per-component apply cursors). Sub-components solve
  // independently — concurrently on the task pool when there are several —
  // and apply serially in ascending flow-id order, keeping every outcome
  // independent of the thread count (see allocate_component). The SubComp
  // pool is high-water sized: entries are cleared, never shrunk, so their
  // inner vectors keep their capacity across events.
  struct AllocFlow {
    std::uint32_t slot;
    PathView path;
    double weight;
    Bandwidth cap;
    Bandwidth rate = 0.0;
    bool fixed = false;
  };
  struct SubComp {
    std::vector<AllocFlow> background;
    std::vector<AllocFlow> normal;
    std::vector<std::uint32_t> links;
    std::vector<std::uint32_t> unsatisfied;
    bool bg_ok = true;
    bool normal_ok = true;
    /// Contains a seed (mutated) link. Progress integration anchors only in
    /// dirty sub-components, so the anchor set — and therefore every
    /// remaining-bytes bit pattern — is a pure function of the mutation
    /// timeline, identical across incremental/reference collection and
    /// per-event/batched solve grouping (DESIGN.md §15).
    bool dirty = false;
  };
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint32_t> comp_roots_;
  std::vector<SubComp> comps_;
  /// Seed links of the in-flight solve (set by solve_now for the duration of
  /// allocate_component; used to mark dirty sub-components).
  PathView solve_seed_{};
  std::vector<std::size_t> comp_cursor_bg_;
  std::vector<std::size_t> comp_cursor_normal_;

  /// Weighted max-min fair allocation with per-flow caps (progressive
  /// filling), scoped to one bottleneck component (see network.cpp).
  static bool max_min_allocate(std::vector<AllocFlow>& flows,
                               std::vector<Bandwidth>& residual,
                               std::vector<double>& weight_on_link,
                               const std::vector<std::uint32_t>& links,
                               std::vector<std::uint32_t>& unsatisfied);

  // Link-utilization sampler: cumulative bytes as of `link_sample_time_`,
  // integrated from the allocated rate whenever a link's throughput is
  // refreshed (end of allocate_component touches exactly the changed links).
  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<double> link_bytes_;
  std::vector<Time> link_sample_time_;
  int flow_track_ = -1;  ///< lazily interned (enabled mode only)
  int link_track_ = -1;
  /// Counter series keys ("linkN"), built once when recording starts: the
  /// timeline retains keys by pointer, so they must stay at fixed addresses.
  std::vector<std::string> link_counter_names_;
  /// Index of the latest link_gbps counter sample (burst coalescing).
  std::size_t link_sample_event_ = telemetry::Timeline::kNoSample;
  /// Reused arg buffer for the batched per-reallocation counter sample.
  std::vector<telemetry::Arg> counter_scratch_;

  friend class NetworkTestPeer;  ///< white-box slab assertions in tests
};

}  // namespace mccs::net
