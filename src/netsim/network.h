#pragma once
// Flow-level network simulation.
//
// The Network owns the set of active flows and allocates bandwidth with
// weighted max-min fairness (progressive filling), the same model the paper's
// large-scale simulator uses ("our flow-level simulator assumes per-flow
// fairness", §6.5). Rates change only when the flow set changes — flow
// start, completion, cancellation, pause/resume (used by the traffic-
// scheduling QoS policy), or a background-flow change — at which point
// completion events are rescheduled on the EventLoop.
//
// Two flow classes:
//  * normal flows — carry a finite number of bytes; max-min fair share.
//  * background flows — model non-collective traffic (e.g., the 75 Gbps
//    flow in Fig. 7). They demand a fixed rate with strict priority over
//    normal flows, mirroring how external traffic appears to a tenant.
//
// Scaling: per-event cost is proportional to the *bottleneck component* of
// the changed flow, not the whole flow set. The Network maintains a per-link
// index (flow members, Σrate, normal-flow count), so a flow-set change only
// re-solves max-min over the flows transitively sharing a link with the
// changed flow; all other flows keep their rates and — critically — their
// already-scheduled completion events. Progress is integrated lazily per
// flow (`last_update`), so unaffected flows pay nothing. The global solver
// remains available as a cross-validation oracle via
// `Options::incremental = false`; both paths order flows identically
// (ascending id), so they produce bit-identical rates on disjoint
// components (see tests/test_netsim_properties.cpp).

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "netsim/routing.h"
#include "netsim/topology.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"

namespace mccs::net {

struct FlowSpec {
  NodeId src;
  NodeId dst;
  Bytes size = 0;  ///< Payload bytes; ignored for background flows.

  /// Explicit path selector; invalid() means the switch applies ECMP hashing
  /// of `ecmp_key` (the multi-tenant-cloud default).
  RouteId route{};
  std::uint64_t ecmp_key = 0;

  /// Per-flow rate cap, e.g. a 50 Gbps virtual NIC (IB traffic-class rate
  /// limit in the testbed). Infinity = uncapped.
  Bandwidth rate_cap = std::numeric_limits<Bandwidth>::infinity();

  /// Fairness weight (per-flow fairness => 1.0).
  double weight = 1.0;

  /// Fixed delay before bytes start moving (propagation + connection setup).
  Time start_latency = 0.0;

  /// Background flow: demands `background_demand` bytes/s forever with
  /// strict priority; `size` and completion callbacks are unused.
  Bandwidth background_demand = 0.0;

  // Metadata consumed by policies / tracing.
  AppId app{};
  JobId job{};

  /// Invoked from the event loop when the last byte is delivered.
  std::function<void(FlowId, Time)> on_complete;
};

/// Administrative state of a physical link (fault injection). A down link
/// contributes zero capacity: flows crossing it keep their bytes and simply
/// stall at rate zero (no completion event) until the link recovers or the
/// flow is cancelled — never a silent completion. A degraded link keeps a
/// fraction of its nominal capacity; the rescale flows through the same
/// incremental max-min path as any other flow-set change.
enum class LinkState { kUp, kDegraded, kDown };

/// One administrative link-state transition, in the order it was applied.
/// The append-only log lets control-plane consumers (the incremental flow
/// assigner) learn exactly which links changed since their last look —
/// a change-set export, so re-solve work scales with events, not links.
struct LinkChange {
  LinkId link{};
  LinkState state = LinkState::kUp;
  double capacity_fraction = 1.0;
  Time at = 0.0;
};

/// Structured outcome of a max-min solve that could not make progress (a
/// pathological capacity state, e.g. a weight so small the share-per-weight
/// overflows). The affected flows are pinned at rate zero — degrading the
/// tenants that own them — instead of killing the whole multi-tenant service
/// with a contract violation.
struct AllocationError {
  Time at = 0.0;
  std::vector<FlowId> flows;  ///< pinned at rate zero, ascending id
};

class Network {
 public:
  struct Options {
    /// Component-scoped reallocation (the fast path). Off = re-solve the
    /// global max-min program on every flow-set change — the reference
    /// oracle the property tests cross-validate against.
    bool incremental = true;
  };

  Network(sim::EventLoop& loop, const Topology& topo)
      : Network(loop, topo, Options{}) {}

  Network(sim::EventLoop& loop, const Topology& topo, Options options)
      : loop_(&loop),
        topo_(&topo),
        routing_(topo),
        options_(options),
        links_(topo.link_count()),
        link_states_(topo.link_count(), LinkState::kUp),
        capacity_scale_(topo.link_count(), 1.0),
        link_mark_(topo.link_count(), 0),
        residual_(topo.link_count(), 0.0),
        weight_scratch_(topo.link_count(), 0.0),
        uf_parent_(topo.link_count(), 0),
        link_bytes_(topo.link_count(), 0.0),
        link_sample_time_(topo.link_count(), 0.0) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const Routing& routing() const { return routing_; }
  [[nodiscard]] sim::EventLoop& loop() { return *loop_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Start a flow; the path is resolved immediately (route id or ECMP).
  FlowId start_flow(FlowSpec spec);

  /// Cancel a flow (e.g., tearing down peer-to-peer connections during a
  /// reconfiguration). No completion callback fires.
  void cancel_flow(FlowId id);

  /// Gate a flow off/on without losing progress (traffic-scheduling QoS).
  void pause_flow(FlowId id);
  void resume_flow(FlowId id);

  [[nodiscard]] bool flow_active(FlowId id) const { return flows_.count(id.get()) > 0; }
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;
  [[nodiscard]] Bytes flow_remaining(FlowId id) const;
  [[nodiscard]] const Path& flow_path(FlowId id) const;
  [[nodiscard]] const FlowSpec& flow_spec(FlowId id) const;
  [[nodiscard]] std::size_t active_flow_count() const { return flows_.size(); }
  /// All live flow ids, ascending (diagnostics / debug dumps).
  [[nodiscard]] std::vector<FlowId> active_flows() const;

  // --- fault injection -------------------------------------------------------
  /// Administratively change a link's state. kDegraded keeps
  /// `capacity_fraction` (in (0, 1]) of the nominal capacity; kDown drops it
  /// to zero (flows crossing the link stall); kUp restores it. Rates of the
  /// affected bottleneck component are recomputed immediately.
  void set_link_state(LinkId id, LinkState state, double capacity_fraction = 1.0);
  [[nodiscard]] LinkState link_state(LinkId id) const {
    MCCS_EXPECTS(id.get() < link_states_.size());
    return link_states_[id.get()];
  }
  [[nodiscard]] double link_capacity_fraction(LinkId id) const {
    MCCS_EXPECTS(id.get() < capacity_scale_.size());
    return capacity_scale_[id.get()];
  }

  /// Every effective set_link_state in application order (no-op calls are
  /// not logged). Consumers keep a cursor into this append-only log and
  /// process entries past it; entries are never mutated or dropped.
  [[nodiscard]] const std::vector<LinkChange>& link_change_log() const {
    return link_changes_;
  }

  /// Observer for unsatisfiable allocations (see AllocationError). Invoked
  /// from a fresh event-loop event, so the handler may start/cancel flows.
  void set_allocation_error_handler(std::function<void(const AllocationError&)> h) {
    allocation_error_handler_ = std::move(h);
  }
  [[nodiscard]] std::uint64_t allocation_error_count() const {
    return allocation_error_count_;
  }

  /// Instantaneous throughput over a link (sum of flow rates), for the
  /// provider's monitoring plane. O(1): served from the per-link index.
  [[nodiscard]] Bandwidth link_throughput(LinkId id) const {
    MCCS_EXPECTS(id.get() < links_.size());
    return links_[id.get()].throughput;
  }

  /// Number of normal (non-background) flows currently traversing a link.
  /// O(1): served from the per-link index.
  [[nodiscard]] std::size_t link_flow_count(LinkId id) const {
    MCCS_EXPECTS(id.get() < links_.size());
    return links_[id.get()].normal_count;
  }

  /// Attach fabric telemetry: flow-lifetime spans and per-link allocated-rate
  /// counter samples land on the timeline when it is enabled. The utilization
  /// integral behind link_bytes() is maintained regardless (it only reads the
  /// throughput the solver already computed, so it cannot perturb the sim).
  void set_telemetry(telemetry::Telemetry* t) { telemetry_ = t; }

  /// Cumulative bytes carried by a link (allocated-rate integral up to now),
  /// for the provider's monitoring plane and telemetry snapshots.
  [[nodiscard]] double link_bytes(LinkId id) const {
    MCCS_EXPECTS(id.get() < links_.size());
    return link_bytes_[id.get()] +
           links_[id.get()].throughput * (loop_->now() - link_sample_time_[id.get()]);
  }

 private:
  struct FlowState {
    FlowSpec spec;
    Path path;
    double remaining = 0.0;  ///< bytes left as of `last_update` (fluid model)
    Bandwidth rate = 0.0;
    Time last_update = 0.0;  ///< when `remaining` was last integrated
    Time created = 0.0;      ///< start_flow time (telemetry span begin)
    bool started = false;    ///< start_latency elapsed
    bool paused = false;
    std::uint64_t mark = 0;  ///< component-BFS visit epoch
    sim::EventLoop::Handle completion;
    sim::EventLoop::Handle activation;
  };

  /// Per-link view of the allocatable flows crossing it, maintained on every
  /// flow add/remove/pause/resume and refreshed when rates change.
  struct LinkIndex {
    std::vector<std::uint32_t> flows;  ///< allocatable members (both classes)
    Bandwidth throughput = 0.0;        ///< Σ rate over `flows`
    std::size_t normal_count = 0;      ///< members with no background demand
  };

  [[nodiscard]] bool allocatable(const FlowState& f) const {
    return f.started && !f.paused;
  }

  /// Integrate a flow's progress up to `now` at its current rate.
  void touch(FlowState& f, Time now) {
    if (now > f.last_update && f.spec.background_demand <= 0.0) {
      f.remaining = std::max(0.0, f.remaining - f.rate * (now - f.last_update));
    }
    f.last_update = now;
  }

  void insert_into_index(std::uint32_t id, const FlowState& f);
  void remove_from_index(std::uint32_t id, const FlowState& f);

  /// Gather the connected component of allocatable flows reachable from
  /// `seed` through shared links into comp_flows_ (ascending id) and
  /// comp_links_. Reference mode gathers everything.
  void collect_component(const Path& seed);
  void collect_all();

  /// Re-solve max-min over comp_flows_ / comp_links_ and apply: rates,
  /// link-index throughput, and completion events (kept when the rate is
  /// unchanged within kRateEpsilon).
  void allocate_component();

  /// Flow-set change entry point: scope to `seed`'s component (or everything
  /// in reference mode) and re-allocate.
  void reallocate(const Path& seed);

  void complete_flow(std::uint32_t id);
  void activate_flow(std::uint32_t id);

  /// Timeline span for a flow that just left the network (delivered or
  /// cancelled). No-op unless telemetry is enabled.
  void emit_flow_span(const FlowState& f, bool completed);

  sim::EventLoop* loop_;
  const Topology* topo_;
  Routing routing_;
  Options options_;
  std::unordered_map<std::uint32_t, FlowState> flows_;
  std::uint32_t next_flow_id_ = 0;

  std::vector<LinkIndex> links_;
  std::vector<LinkState> link_states_;
  std::vector<double> capacity_scale_;  ///< effective = nominal * scale
  std::vector<LinkChange> link_changes_;  ///< append-only change-set export

  std::function<void(const AllocationError&)> allocation_error_handler_;
  std::uint64_t allocation_error_count_ = 0;
  std::vector<std::uint32_t> unsatisfied_scratch_;

  // Scratch for component discovery + allocation (persistent to avoid O(L)
  // work per event; only entries for comp_links_ are ever read or written).
  std::vector<std::uint32_t> comp_flows_;
  std::vector<std::uint32_t> comp_links_;
  std::vector<std::uint64_t> link_mark_;
  std::uint64_t epoch_ = 0;
  std::vector<Bandwidth> residual_;
  std::vector<double> weight_scratch_;

  // Disjoint sub-component partition of a collected flow set (union-find
  // over links + per-component apply cursors). Sub-components solve
  // independently — concurrently on the task pool when there are several —
  // and apply serially in ascending flow-id order, keeping every outcome
  // independent of the thread count (see allocate_component).
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint32_t> comp_roots_;
  std::vector<std::size_t> comp_cursor_bg_;
  std::vector<std::size_t> comp_cursor_normal_;

  // Link-utilization sampler: cumulative bytes as of `link_sample_time_`,
  // integrated from the allocated rate whenever a link's throughput is
  // refreshed (end of allocate_component touches exactly the changed links).
  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<double> link_bytes_;
  std::vector<Time> link_sample_time_;
  int flow_track_ = -1;  ///< lazily interned (enabled mode only)
  int link_track_ = -1;
  /// Counter series keys ("linkN"), built once when recording starts: the
  /// timeline retains keys by pointer, so they must stay at fixed addresses.
  std::vector<std::string> link_counter_names_;
  /// Index of the latest link_gbps counter sample (burst coalescing).
  std::size_t link_sample_event_ = telemetry::Timeline::kNoSample;
  /// Reused arg buffer for the batched per-reallocation counter sample.
  std::vector<telemetry::Arg> counter_scratch_;
};

}  // namespace mccs::net
