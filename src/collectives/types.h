#pragma once
// Collective-communication vocabulary shared by the MCCS service, the NCCL
// baseline model, and the benches: operations, data types, reduction
// operators, and elementwise reduction over raw device bytes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/check.h"

namespace mccs::coll {

enum class CollectiveKind {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kBroadcast,
  kReduce,    ///< reduction delivered to a single root
  kAllToAll,  ///< pairwise personalized exchange (rank r's block j -> rank j)
  kGather,    ///< every rank's buffer -> block r of the root's buffer
  kScatter,   ///< block j of the root's buffer -> rank j
};

enum class DataType { kFloat32, kFloat64, kInt32, kInt64, kUint8 };

enum class ReduceOp { kSum, kProd, kMin, kMax };

/// Collective algorithms the plan compiler can lower (compiler.h). kRing and
/// kTree are the paper-faithful schedules; kDoubleBinaryTree splits the
/// buffer across two rotated trees so no single link carries every chunk;
/// kPairwise exchanges directly over the full mesh (reduce-scatter +
/// all-gather without forwarding). Kinds an algorithm cannot express fall
/// back deterministically — see selectable_algorithms().
enum class Algorithm { kRing, kTree, kDoubleBinaryTree, kPairwise };

/// Static-storage algorithm name (telemetry, trace export, bench tables).
inline const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kRing: return "ring";
    case Algorithm::kTree: return "tree";
    case Algorithm::kDoubleBinaryTree: return "dbtree";
    case Algorithm::kPairwise: return "pairwise";
  }
  return "?";
}

inline std::size_t dtype_size(DataType t) {
  switch (t) {
    case DataType::kFloat32: return 4;
    case DataType::kFloat64: return 8;
    case DataType::kInt32: return 4;
    case DataType::kInt64: return 8;
    case DataType::kUint8: return 1;
  }
  MCCS_CHECK(false, "unknown dtype");
  return 0;
}

/// Static-storage kind name, safe to retain by pointer (telemetry events).
inline const char* kind_name(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kAllReduce: return "AllReduce";
    case CollectiveKind::kAllGather: return "AllGather";
    case CollectiveKind::kReduceScatter: return "ReduceScatter";
    case CollectiveKind::kBroadcast: return "Broadcast";
    case CollectiveKind::kReduce: return "Reduce";
    case CollectiveKind::kAllToAll: return "AllToAll";
    case CollectiveKind::kGather: return "Gather";
    case CollectiveKind::kScatter: return "Scatter";
  }
  return "?";
}

inline std::string to_string(CollectiveKind k) { return kind_name(k); }

namespace detail {

// Keep the reference implementation genuinely scalar: it is the correctness
// oracle the vectorized kernels (reduce.cpp) are tested and benchmarked
// against, so the compiler must not quietly vectorize it too.
#if defined(__GNUC__) && !defined(__clang__)
#define MCCS_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define MCCS_NO_VECTORIZE
#endif

template <class T>
MCCS_NO_VECTORIZE void reduce_typed_scalar(std::span<std::byte> acc,
                                           std::span<const std::byte> in,
                                           ReduceOp op) {
  auto* a = reinterpret_cast<T*>(acc.data());
  const auto* b = reinterpret_cast<const T*>(in.data());
  const std::size_t n = acc.size() / sizeof(T);
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < n; ++i) a[i] = a[i] + b[i];
      break;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < n; ++i) a[i] = a[i] * b[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < n; ++i) a[i] = b[i] < a[i] ? b[i] : a[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) a[i] = b[i] > a[i] ? b[i] : a[i];
      break;
  }
}

#undef MCCS_NO_VECTORIZE

}  // namespace detail

/// acc[i] = acc[i] (op) in[i], elementwise over raw device bytes.
/// Implemented in reduce.cpp as op-specialized restrict-pointer loops that
/// auto-vectorize; bit-identical to reduce_bytes_reference (elementwise ops
/// involve no reassociation, so vectorization preserves IEEE semantics).
void reduce_bytes(std::span<std::byte> acc, std::span<const std::byte> in,
                  DataType dtype, ReduceOp op);

/// Scalar reference implementation, kept as the oracle for tests and the
/// datapath microbench.
inline void reduce_bytes_reference(std::span<std::byte> acc,
                                   std::span<const std::byte> in,
                                   DataType dtype, ReduceOp op) {
  MCCS_EXPECTS(acc.size() == in.size());
  MCCS_EXPECTS(acc.size() % dtype_size(dtype) == 0);
  switch (dtype) {
    case DataType::kFloat32: detail::reduce_typed_scalar<float>(acc, in, op); break;
    case DataType::kFloat64: detail::reduce_typed_scalar<double>(acc, in, op); break;
    case DataType::kInt32: detail::reduce_typed_scalar<std::int32_t>(acc, in, op); break;
    case DataType::kInt64: detail::reduce_typed_scalar<std::int64_t>(acc, in, op); break;
    case DataType::kUint8: detail::reduce_typed_scalar<std::uint8_t>(acc, in, op); break;
  }
}

}  // namespace mccs::coll
