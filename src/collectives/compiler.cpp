#include "collectives/compiler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace mccs::coll {
namespace {

int mod(int x, int n) { return ((x % n) + n) % n; }

// --- tree scaffolding --------------------------------------------------------
// Same rotated complete binary tree as schedule.cpp, generalized with a
// `mirror` flag: the normal mapping is tid = (rank - root) mod n, the mirrored
// one tid = (root - rank) mod n. A double binary tree pairs a normal and a
// mirrored tree (or two normal trees with different roots) so interior nodes
// of one are leaves of the other.

struct TreeShape {
  int parent = -1;      ///< tid of parent (-1 at root)
  int child_index = 0;  ///< 0 = left child of parent, 1 = right
  std::vector<int> children;  ///< tids
};

TreeShape tree_shape(int nranks, int tid) {
  TreeShape node;
  if (tid > 0) {
    node.parent = (tid - 1) / 2;
    node.child_index = (tid % 2 == 1) ? 0 : 1;
  }
  for (int c : {2 * tid + 1, 2 * tid + 2}) {
    if (c < nranks) node.children.push_back(c);
  }
  return node;
}

int rank_of_tid(int tid, int root, int n, bool mirror) {
  return mirror ? mod(root - tid, n) : mod(root + tid, n);
}

int tid_of_rank(int rank, int root, int n, bool mirror) {
  return mirror ? mod(root - rank, n) : mod(rank - root, n);
}

// --- phase emitters ----------------------------------------------------------
// Each appends one decomposed phase's CommSteps, numbering from `index` and
// tagging from `tag_base` so phases stay disjoint in tag space.

/// Ring phase from precomputed RingSteps. `buffer_kind` selects the
/// positional-chunk -> buffer-chunk mapping of the PARENT collective (an
/// AllReduce's AllGather phase addresses AllReduce chunks, not AllGather
/// blocks).
void append_ring_phase(ChannelSchedule& sched, int& index,
                       CollectiveKind buffer_kind, const RingOrder& order,
                       int rank, const std::vector<RingStep>& steps,
                       int tag_base) {
  const int pos = order.position_of(rank);
  const int succ = order.rank_at(pos + 1);
  const int pred = order.rank_at(pos - 1);
  for (const RingStep& rs : steps) {
    CommStep st;
    st.index = index++;
    if (rs.has_send()) {
      st.send_to = succ;
      st.send_chunk = chunk_to_buffer_index(buffer_kind, order, rs.send_chunk);
      st.send_tag = tag_base + rs.send_tag;
    }
    if (rs.has_recv()) {
      st.recv_from = pred;
      st.recv_chunk = chunk_to_buffer_index(buffer_kind, order, rs.recv_chunk);
      st.recv_tag = tag_base + rs.recv_tag;
      st.reduce = rs.reduce;
    }
    sched.steps.push_back(st);
  }
}

/// Tree reduce phase over chunks [c0, c1): recv children (reduce), send
/// parent. Tags 2k + child_index, offset by tag_base — chunk-global k keeps
/// two trees over disjoint chunk ranges disjoint in tag space too.
void append_tree_reduce(ChannelSchedule& sched, int& index, int nranks,
                        int rank, int root, bool mirror, std::size_t c0,
                        std::size_t c1, int tag_base) {
  const int tid = tid_of_rank(rank, root, nranks, mirror);
  const TreeShape node = tree_shape(nranks, tid);
  for (std::size_t k = c0; k < c1; ++k) {
    for (std::size_t c = 0; c < node.children.size(); ++c) {
      CommStep st;
      st.index = index++;
      st.recv_from = rank_of_tid(node.children[c], root, nranks, mirror);
      st.recv_chunk = k;
      st.recv_tag = tag_base + 2 * static_cast<int>(k) + static_cast<int>(c);
      st.reduce = true;
      sched.steps.push_back(st);
    }
    if (node.parent >= 0) {
      CommStep st;
      st.index = index++;
      st.send_to = rank_of_tid(node.parent, root, nranks, mirror);
      st.send_chunk = k;
      st.send_tag = tag_base + 2 * static_cast<int>(k) + node.child_index;
      sched.steps.push_back(st);
    }
  }
}

/// Tree broadcast phase over chunks [c0, c1): recv parent, send children.
/// Tags k + tag_base (one tag per chunk; parent->both-children share it,
/// which is legal — tag uniqueness is per receiving schedule).
void append_tree_broadcast(ChannelSchedule& sched, int& index, int nranks,
                           int rank, int root, bool mirror, std::size_t c0,
                           std::size_t c1, int tag_base) {
  const int tid = tid_of_rank(rank, root, nranks, mirror);
  const TreeShape node = tree_shape(nranks, tid);
  for (std::size_t k = c0; k < c1; ++k) {
    if (node.parent >= 0) {
      CommStep st;
      st.index = index++;
      st.recv_from = rank_of_tid(node.parent, root, nranks, mirror);
      st.recv_chunk = k;
      st.recv_tag = tag_base + static_cast<int>(k);
      st.reduce = false;
      sched.steps.push_back(st);
    }
    for (int child : node.children) {
      CommStep st;
      st.index = index++;
      st.send_to = rank_of_tid(child, root, nranks, mirror);
      st.send_chunk = k;
      st.send_tag = tag_base + static_cast<int>(k);
      sched.steps.push_back(st);
    }
  }
}

/// Pairwise-mesh reduce-scatter phase in ring-position space: at round s,
/// send my contribution to block `to` directly to rank `to`, receive rank
/// `from`'s contribution to my block and reduce. With a locality ring order
/// the early rounds pair same-host neighbours (hierarchy pass). Round-robin
/// in position space keeps every round a perfect matching of send/recv pairs.
void append_mesh_reducescatter(ChannelSchedule& sched, int& index,
                               const RingOrder& order, int rank,
                               int tag_base) {
  const int n = static_cast<int>(order.size());
  const int pos = order.position_of(rank);
  for (int s = 1; s < n; ++s) {
    const int to = order.rank_at(pos + s);
    const int from = order.rank_at(pos - s);
    CommStep st;
    st.index = index++;
    st.send_to = to;
    st.send_chunk = static_cast<std::size_t>(to);  // my contribution to `to`
    st.send_tag = tag_base + rank;                 // inbound tag = sender rank
    st.recv_from = from;
    st.recv_chunk = static_cast<std::size_t>(rank);  // reduce into my block
    st.recv_tag = tag_base + from;
    st.reduce = true;
    sched.steps.push_back(st);
  }
}

/// Pairwise-mesh all-gather phase: same round-robin, each rank streams its
/// own (already final) block to every peer.
void append_mesh_allgather(ChannelSchedule& sched, int& index,
                           const RingOrder& order, int rank, int tag_base) {
  const int n = static_cast<int>(order.size());
  const int pos = order.position_of(rank);
  for (int s = 1; s < n; ++s) {
    const int to = order.rank_at(pos + s);
    const int from = order.rank_at(pos - s);
    CommStep st;
    st.index = index++;
    st.send_to = to;
    st.send_chunk = static_cast<std::size_t>(rank);  // my block
    st.send_tag = tag_base + rank;
    st.recv_from = from;
    st.recv_chunk = static_cast<std::size_t>(from);  // peer's block
    st.recv_tag = tag_base + from;
    st.reduce = false;
    sched.steps.push_back(st);
  }
}

/// Star broadcast phase: the root streams every chunk directly to each peer.
void append_star_broadcast(ChannelSchedule& sched, int& index, int nranks,
                           int rank, int root, std::size_t num_chunks,
                           int tag_base) {
  for (std::size_t k = 0; k < num_chunks; ++k) {
    if (rank == root) {
      for (int q = 0; q < nranks; ++q) {
        if (q == root) continue;
        CommStep st;
        st.index = index++;
        st.send_to = q;
        st.send_chunk = k;
        st.send_tag = tag_base + static_cast<int>(k);
        sched.steps.push_back(st);
      }
    } else {
      CommStep st;
      st.index = index++;
      st.recv_from = root;
      st.recv_chunk = k;
      st.recv_tag = tag_base + static_cast<int>(k);
      st.reduce = false;
      sched.steps.push_back(st);
    }
  }
}

/// Star reduce phase: every peer sends every chunk straight to the root,
/// which reduces all n-1 contributions into place. Tags k*(n) + sender keep
/// the root's n-1 receive slots per chunk distinct.
void append_star_reduce(ChannelSchedule& sched, int& index, int nranks,
                        int rank, int root, std::size_t num_chunks,
                        int tag_base) {
  for (std::size_t k = 0; k < num_chunks; ++k) {
    if (rank == root) {
      for (int q = 0; q < nranks; ++q) {
        if (q == root) continue;
        CommStep st;
        st.index = index++;
        st.recv_from = q;
        st.recv_chunk = k;
        st.recv_tag = tag_base + static_cast<int>(k) * nranks + q;
        st.reduce = true;
        sched.steps.push_back(st);
      }
    } else {
      CommStep st;
      st.index = index++;
      st.send_to = root;
      st.send_chunk = k;
      st.send_tag = tag_base + static_cast<int>(k) * nranks + rank;
      sched.steps.push_back(st);
    }
  }
}

// --- hierarchy pass ----------------------------------------------------------

HierarchySummary summarize_hierarchy(const CompileInput& in) {
  HierarchySummary h;
  if (in.host_of_rank == nullptr || in.host_of_rank->empty()) return h;
  MCCS_EXPECTS(static_cast<int>(in.host_of_rank->size()) == in.nranks);
  const std::unordered_set<int> hosts(in.host_of_rank->begin(),
                                      in.host_of_rank->end());
  h.nhosts = static_cast<int>(hosts.size());
  for (int p = 0; p < in.nranks; ++p) {
    const int a = (*in.host_of_rank)[static_cast<std::size_t>(in.order->rank_at(p))];
    const int b =
        (*in.host_of_rank)[static_cast<std::size_t>(in.order->rank_at(p + 1))];
    if (a != b) ++h.cross_host_ring_edges;
  }
  return h;
}

/// Apply the fallback contract: the algorithm whose lowering actually runs.
Algorithm effective_algorithm(CollectiveKind kind, Algorithm algo) {
  switch (kind) {
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      // Tree shapes cannot express block-per-rank outputs; ring can.
      if (algo == Algorithm::kTree || algo == Algorithm::kDoubleBinaryTree) {
        return Algorithm::kRing;
      }
      return algo;
    case CollectiveKind::kReduce:
      // Twin roots buy nothing when one root wants the whole result.
      if (algo == Algorithm::kDoubleBinaryTree) return Algorithm::kTree;
      return algo;
    case CollectiveKind::kAllToAll:
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
      return Algorithm::kRing;  // fixed-shape kinds; value unused
    case CollectiveKind::kAllReduce:
    case CollectiveKind::kBroadcast:
      return algo;
  }
  return algo;
}

/// Double-binary-tree chunk count: even and >= 2 so the two trees split the
/// pipeline range evenly.
std::size_t dbt_chunks(std::size_t tree_chunks) {
  std::size_t kk = std::max<std::size_t>(2, tree_chunks);
  if (kk % 2 != 0) ++kk;
  return kk;
}

}  // namespace

CompiledSchedule compile_collective(const CompileInput& in) {
  MCCS_EXPECTS(in.order != nullptr);
  MCCS_EXPECTS(in.nranks >= 2);
  MCCS_EXPECTS(in.rank >= 0 && in.rank < in.nranks);
  MCCS_EXPECTS(in.root >= 0 && in.root < in.nranks);
  MCCS_EXPECTS(static_cast<int>(in.order->size()) == in.nranks);
  const int n = in.nranks;
  const std::size_t nsz = static_cast<std::size_t>(n);

  CompiledSchedule out;
  out.hierarchy = summarize_hierarchy(in);

  // Fixed-shape kinds first: no algorithm choice, dedicated builders.
  switch (in.kind) {
    case CollectiveKind::kAllToAll:
      out.schedule = build_alltoall_schedule(n, in.rank);
      out.phases = {{PhaseOp::kAllToAll, PhaseShape::kMesh, 0, 0, 0, nsz}};
      return out;
    case CollectiveKind::kGather:
      out.schedule = build_gather_schedule(n, in.rank, in.root);
      out.phases = {{PhaseOp::kGather, PhaseShape::kStar, in.root, 0, 0, nsz}};
      return out;
    case CollectiveKind::kScatter:
      out.schedule = build_scatter_schedule(n, in.rank, in.root);
      out.phases = {{PhaseOp::kScatter, PhaseShape::kStar, in.root, 0, 0, nsz}};
      return out;
    default:
      break;
  }

  const Algorithm algo = effective_algorithm(in.kind, in.algorithm);
  const int pos = in.order->position_of(in.rank);

  if (algo == Algorithm::kRing) {
    out.is_ring = true;
    out.my_position = pos;
    switch (in.kind) {
      case CollectiveKind::kAllReduce: {
        // Decomposition: reduce-scatter then all-gather over the same ring.
        // The all-gather enters at position + 1 (where the reduce-scatter
        // leaves each position's finished chunk) with tags rebased past the
        // reduce-scatter's n-1; the concatenation reproduces
        // ring_allreduce_steps step for step, so plans compiled here are
        // bit-identical to the historical fused builder.
        out.schedule.num_chunks = nsz;
        int index = 0;
        append_ring_phase(out.schedule, index, in.kind, *in.order, in.rank,
                          ring_reducescatter_steps(n, pos), 0);
        append_ring_phase(out.schedule, index, in.kind, *in.order, in.rank,
                          ring_allgather_steps(n, mod(pos + 1, n)), n - 1);
        out.phases = {{PhaseOp::kReduceScatter, PhaseShape::kRing, 0, 0, 0, nsz},
                      {PhaseOp::kAllGather, PhaseShape::kRing, 0, n - 1, 0, nsz}};
        return out;
      }
      case CollectiveKind::kReduce:
        out.schedule = build_chain_reduce_schedule(*in.order, in.rank, in.root);
        out.phases = {{PhaseOp::kReduce, PhaseShape::kChain, in.root, 0, 0, nsz}};
        return out;
      case CollectiveKind::kAllGather:
        out.schedule = build_ring_schedule(in.kind, *in.order, in.rank, in.root);
        out.phases = {{PhaseOp::kAllGather, PhaseShape::kRing, 0, 0, 0, nsz}};
        return out;
      case CollectiveKind::kReduceScatter:
        out.schedule = build_ring_schedule(in.kind, *in.order, in.rank, in.root);
        out.phases = {
            {PhaseOp::kReduceScatter, PhaseShape::kRing, 0, 0, 0, nsz}};
        return out;
      case CollectiveKind::kBroadcast:
        out.schedule = build_ring_schedule(in.kind, *in.order, in.rank, in.root);
        out.phases = {
            {PhaseOp::kBroadcast, PhaseShape::kRing, in.root, 0, 0, nsz}};
        return out;
      default:
        MCCS_CHECK(false, "unhandled ring lowering");
    }
  }

  if (algo == Algorithm::kTree) {
    const std::size_t kk = std::max<std::size_t>(1, in.tree_chunks);
    out.schedule.num_chunks = kk;
    int index = 0;
    switch (in.kind) {
      case CollectiveKind::kAllReduce:
        // Decomposition: Reduce to rank 0, then Broadcast back down the same
        // tree. Identical emission to build_tree_allreduce_schedule.
        append_tree_reduce(out.schedule, index, n, in.rank, 0, false, 0, kk, 0);
        append_tree_broadcast(out.schedule, index, n, in.rank, 0, false, 0, kk,
                              2 * static_cast<int>(kk));
        out.phases = {{PhaseOp::kReduce, PhaseShape::kTree, 0, 0, 0, kk},
                      {PhaseOp::kBroadcast, PhaseShape::kTree, 0,
                       2 * static_cast<int>(kk), 0, kk}};
        return out;
      case CollectiveKind::kBroadcast:
        append_tree_broadcast(out.schedule, index, n, in.rank, in.root, false,
                              0, kk, 0);
        out.phases = {
            {PhaseOp::kBroadcast, PhaseShape::kTree, in.root, 0, 0, kk}};
        return out;
      case CollectiveKind::kReduce:
        append_tree_reduce(out.schedule, index, n, in.rank, in.root, false, 0,
                           kk, 0);
        out.phases = {{PhaseOp::kReduce, PhaseShape::kTree, in.root, 0, 0, kk}};
        return out;
      default:
        MCCS_CHECK(false, "tree lowering: kind should have fallen back");
    }
  }

  if (algo == Algorithm::kDoubleBinaryTree) {
    const std::size_t kk = dbt_chunks(in.tree_chunks);
    const std::size_t half = kk / 2;
    out.schedule.num_chunks = kk;
    int index = 0;
    if (in.kind == CollectiveKind::kAllReduce) {
      // Two trees with different roots split the chunk range: tree A (root 0)
      // owns [0, half), tree B (root n/2) owns [half, kk), so no single rank
      // is the reduction root — and thus the NIC bottleneck — for every
      // chunk. Chunk-global tag arithmetic keeps the trees' tag sets
      // disjoint; phase-major order (all reduces, then all broadcasts) makes
      // the composition deadlock-free by the same induction as a single
      // tree.
      const int root_b = n / 2;
      append_tree_reduce(out.schedule, index, n, in.rank, 0, false, 0, half, 0);
      append_tree_reduce(out.schedule, index, n, in.rank, root_b, false, half,
                         kk, 0);
      const int base = 2 * static_cast<int>(kk);
      append_tree_broadcast(out.schedule, index, n, in.rank, 0, false, 0, half,
                            base);
      append_tree_broadcast(out.schedule, index, n, in.rank, root_b, false,
                            half, kk, base);
      out.phases = {{PhaseOp::kReduce, PhaseShape::kTree, 0, 0, 0, half},
                    {PhaseOp::kReduce, PhaseShape::kTree, root_b, 0, half, kk},
                    {PhaseOp::kBroadcast, PhaseShape::kTree, 0, base, 0, half},
                    {PhaseOp::kBroadcast, PhaseShape::kTree, root_b, base,
                     half, kk}};
      return out;
    }
    MCCS_CHECK(in.kind == CollectiveKind::kBroadcast,
               "dbt lowering: kind should have fallen back");
    // Both trees share the caller's root; the second is the mirrored tree
    // (tid = root - rank), so interior nodes of one are leaves of the other
    // and each tree streams half the chunks.
    append_tree_broadcast(out.schedule, index, n, in.rank, in.root, false, 0,
                          half, 0);
    append_tree_broadcast(out.schedule, index, n, in.rank, in.root, true, half,
                          kk, 0);
    out.phases = {
        {PhaseOp::kBroadcast, PhaseShape::kTree, in.root, 0, 0, half},
        {PhaseOp::kBroadcast, PhaseShape::kTree, in.root, 0, half, kk}};
    return out;
  }

  MCCS_CHECK(algo == Algorithm::kPairwise, "unknown algorithm");
  out.schedule.num_chunks = nsz;
  int index = 0;
  switch (in.kind) {
    case CollectiveKind::kAllReduce:
      // Decomposition: mesh reduce-scatter then mesh all-gather, one direct
      // flow per rank pair per phase — no forwarding, 2 steps of latency.
      append_mesh_reducescatter(out.schedule, index, *in.order, in.rank, 0);
      append_mesh_allgather(out.schedule, index, *in.order, in.rank, n);
      out.phases = {{PhaseOp::kReduceScatter, PhaseShape::kMesh, 0, 0, 0, nsz},
                    {PhaseOp::kAllGather, PhaseShape::kMesh, 0, n, 0, nsz}};
      return out;
    case CollectiveKind::kAllGather:
      append_mesh_allgather(out.schedule, index, *in.order, in.rank, 0);
      out.phases = {{PhaseOp::kAllGather, PhaseShape::kMesh, 0, 0, 0, nsz}};
      return out;
    case CollectiveKind::kReduceScatter:
      append_mesh_reducescatter(out.schedule, index, *in.order, in.rank, 0);
      out.phases = {{PhaseOp::kReduceScatter, PhaseShape::kMesh, 0, 0, 0, nsz}};
      return out;
    case CollectiveKind::kBroadcast:
      append_star_broadcast(out.schedule, index, n, in.rank, in.root, nsz, 0);
      out.phases = {
          {PhaseOp::kBroadcast, PhaseShape::kStar, in.root, 0, 0, nsz}};
      return out;
    case CollectiveKind::kReduce:
      append_star_reduce(out.schedule, index, n, in.rank, in.root, nsz, 0);
      out.phases = {{PhaseOp::kReduce, PhaseShape::kStar, in.root, 0, 0, nsz}};
      return out;
    default:
      MCCS_CHECK(false, "unhandled pairwise lowering");
  }
  return out;
}

std::vector<Algorithm> selectable_algorithms(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
    case CollectiveKind::kBroadcast:
      return {Algorithm::kRing, Algorithm::kTree, Algorithm::kDoubleBinaryTree,
              Algorithm::kPairwise};
    case CollectiveKind::kReduce:
      return {Algorithm::kRing, Algorithm::kTree, Algorithm::kPairwise};
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      return {Algorithm::kRing, Algorithm::kPairwise};
    case CollectiveKind::kAllToAll:
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
      return {Algorithm::kRing};  // fixed shape; algorithm is a no-op
  }
  return {Algorithm::kRing};
}

std::vector<std::pair<int, int>> algorithm_edges(Algorithm algorithm,
                                                 const RingOrder& order) {
  const int n = static_cast<int>(order.size());
  std::vector<std::pair<int, int>> edges;
  if (n < 2) return edges;

  // Ring-successor edges in position order — byte-for-byte the enumeration
  // the flow assigner has always used, and the floor every algorithm needs
  // because fallback kinds (e.g. AllGather under kTree) still run rings.
  auto append_ring_edges = [&] {
    for (int p = 0; p < n; ++p) {
      edges.emplace_back(order.rank_at(p), order.rank_at(p + 1));
    }
  };

  switch (algorithm) {
    case Algorithm::kRing:
      append_ring_edges();
      return edges;
    case Algorithm::kTree:
      edges = tree_edges(n, 0, CollectiveKind::kAllReduce);
      append_ring_edges();
      break;
    case Algorithm::kDoubleBinaryTree: {
      edges = tree_edges(n, 0, CollectiveKind::kAllReduce);
      const auto tree_b = tree_edges(n, n / 2, CollectiveKind::kAllReduce);
      edges.insert(edges.end(), tree_b.begin(), tree_b.end());
      append_ring_edges();
      break;
    }
    case Algorithm::kPairwise:
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          edges.emplace_back(order.rank_at(i), order.rank_at(j));
        }
      }
      return edges;  // already duplicate-free
  }

  // Tree unions can repeat edges (tree B overlapping tree A, rings touching
  // tree links); keep first occurrences, preserving order.
  std::unordered_set<long long> seen;
  std::vector<std::pair<int, int>> unique;
  unique.reserve(edges.size());
  for (const auto& e : edges) {
    const long long key = static_cast<long long>(e.first) * 1'000'000 + e.second;
    if (seen.insert(key).second) unique.push_back(e);
  }
  return unique;
}

Time algorithm_cost(Algorithm algorithm, CollectiveKind kind, int nranks,
                    Bytes bytes, const CostParams& p) {
  if (nranks <= 1) return 0.0;
  const double n = static_cast<double>(nranks);
  const double B = static_cast<double>(bytes);
  // Depth of the rotated complete binary tree (levels below the root).
  const double depth = std::ceil(std::log2(n + 1.0));
  const Algorithm algo = effective_algorithm(kind, algorithm);

  switch (kind) {
    case CollectiveKind::kAllReduce:
      switch (algo) {
        case Algorithm::kRing:
          // 2(n-1) serial steps; each byte crosses a link twice, striped.
          return 2.0 * (n - 1.0) * p.alpha + 2.0 * (n - 1.0) / n * B * p.beta;
        case Algorithm::kTree:
          // 2*depth hops up+down; the root's link carries ~2B each way.
          return 2.0 * depth * p.alpha + 4.0 * B * p.beta;
        case Algorithm::kDoubleBinaryTree:
          // Halved root bottleneck, but our lowering serializes the two
          // trees' phases, so the bandwidth term lands between tree and
          // ring and the latency term slightly above the single tree —
          // matching measurement, where this schedule never strictly wins.
          return (2.0 * depth + 2.0) * p.alpha + 3.6 * B * p.beta;
        case Algorithm::kPairwise:
          // 2 rounds of latency but n-1 concurrent flows fan in on each
          // NIC; model the serialization as a bandwidth penalty vs ring.
          return 2.0 * (n - 1.0) * p.alpha + 2.5 * (n - 1.0) / n * B * p.beta;
      }
      break;
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      if (algo == Algorithm::kPairwise) {
        return (n - 1.0) * p.alpha + 1.25 * (n - 1.0) / n * B * p.beta;
      }
      return (n - 1.0) * p.alpha + (n - 1.0) / n * B * p.beta;
    case CollectiveKind::kBroadcast:
    case CollectiveKind::kReduce:
      switch (algo) {
        case Algorithm::kRing:
          // Pipelined chain: n-1 hops of latency, each byte one link.
          return (n + 1.0) * p.alpha + B * p.beta;
        case Algorithm::kTree:
          // depth hops; interior nodes forward to two children serially.
          return depth * p.alpha + 2.0 * B * p.beta;
        case Algorithm::kDoubleBinaryTree:
          // Serialized halves again: latency of two interleaved trees.
          return (depth + 2.0) * p.alpha + 2.0 * B * p.beta;
        case Algorithm::kPairwise:
          // Star: the root's NIC carries (n-1) full copies.
          return (n - 1.0) * p.alpha + (n - 1.0) * B * p.beta;
      }
      break;
    case CollectiveKind::kAllToAll:
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
      // Fixed shape — a flat estimate so the selector is total.
      return (n - 1.0) * p.alpha + (n - 1.0) / n * B * p.beta;
  }
  return (n - 1.0) * p.alpha + B * p.beta;
}

Algorithm choose_algorithm(CollectiveKind kind, int nranks, Bytes bytes,
                           const CostParams& p) {
  Algorithm best = Algorithm::kRing;
  Time best_cost = 0.0;
  bool first = true;
  for (const Algorithm a : selectable_algorithms(kind)) {
    const Time c = algorithm_cost(a, kind, nranks, bytes, p);
    if (first || c < best_cost) {
      best = a;
      best_cost = c;
      first = false;
    }
  }
  return best;
}

std::uint32_t compiler_fingerprint(std::size_t tree_pipeline_chunks) {
  // FNV-1a over the pass-pipeline version plus every strategy knob (beyond
  // the algorithm) that shapes emitted schedules. Bump kPassVersion whenever
  // a pass changes emission — cached plans keyed on the old value then die
  // with their epoch instead of leaking stale shapes across a deploy.
  constexpr std::uint32_t kPassVersion = 1;
  std::uint32_t h = 2166136261u;
  const auto fold = [&h](std::uint32_t v) { h = (h ^ v) * 16777619u; };
  fold(kPassVersion);
  fold(static_cast<std::uint32_t>(tree_pipeline_chunks));
  return h;
}

}  // namespace mccs::coll
