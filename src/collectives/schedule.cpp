#include "collectives/schedule.h"

namespace mccs::coll {
namespace {

/// Complete-binary-tree helpers in "rotated" id space where the tree root is
/// id 0: rank r <-> tid (r - root mod n).
struct TreeNode {
  int tid = 0;
  int parent = -1;       ///< tid of parent (-1 at root)
  int child_index = 0;   ///< 0 = left child of parent, 1 = right
  std::vector<int> children;  ///< tids
};

TreeNode tree_node(int nranks, int tid) {
  TreeNode node;
  node.tid = tid;
  if (tid > 0) {
    node.parent = (tid - 1) / 2;
    node.child_index = (tid % 2 == 1) ? 0 : 1;
  }
  for (int c : {2 * tid + 1, 2 * tid + 2}) {
    if (c < nranks) node.children.push_back(c);
  }
  return node;
}

int tid_to_rank(int tid, int root, int n) { return (tid + root) % n; }

}  // namespace

ChannelSchedule build_ring_schedule(CollectiveKind kind, const RingOrder& order,
                                    int rank, int root) {
  const int n = static_cast<int>(order.size());
  const int position = order.position_of(rank);

  std::vector<RingStep> ring_steps;
  switch (kind) {
    case CollectiveKind::kAllReduce:
      ring_steps = ring_allreduce_steps(n, position);
      break;
    case CollectiveKind::kAllGather:
      ring_steps = ring_allgather_steps(n, position);
      break;
    case CollectiveKind::kReduceScatter:
      ring_steps = ring_reducescatter_steps(n, position);
      break;
    case CollectiveKind::kBroadcast: {
      const int rel = ((position - order.position_of(root)) % n + n) % n;
      ring_steps = ring_broadcast_steps(n, rel);
      break;
    }
    case CollectiveKind::kReduce:
    case CollectiveKind::kAllToAll:
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
      MCCS_CHECK(false, "this collective uses a dedicated schedule builder");
      break;
  }

  ChannelSchedule sched;
  sched.num_chunks = static_cast<std::size_t>(n);
  sched.steps.reserve(ring_steps.size());
  const int succ = order.rank_at(position + 1);
  const int pred = order.rank_at(position - 1);
  for (const RingStep& rs : ring_steps) {
    CommStep st;
    st.index = rs.index;
    if (rs.has_send()) {
      st.send_to = succ;
      st.send_chunk = chunk_to_buffer_index(kind, order, rs.send_chunk);
      st.send_tag = rs.send_tag;
    }
    if (rs.has_recv()) {
      st.recv_from = pred;
      st.recv_chunk = chunk_to_buffer_index(kind, order, rs.recv_chunk);
      st.recv_tag = rs.recv_tag;
      st.reduce = rs.reduce;
    }
    sched.steps.push_back(st);
  }
  return sched;
}

ChannelSchedule build_tree_allreduce_schedule(int nranks, int rank,
                                              std::size_t num_chunks) {
  MCCS_EXPECTS(nranks >= 2);
  MCCS_EXPECTS(rank >= 0 && rank < nranks);
  MCCS_EXPECTS(num_chunks >= 1);
  const int root = 0;
  const int tid = rank;  // root 0 => tid == rank
  const TreeNode node = tree_node(nranks, tid);
  const int kk = static_cast<int>(num_chunks);

  ChannelSchedule sched;
  sched.num_chunks = num_chunks;
  int index = 0;
  // Phase 1: reduce towards the root, chunk by chunk.
  for (int k = 0; k < kk; ++k) {
    for (std::size_t c = 0; c < node.children.size(); ++c) {
      CommStep st;
      st.index = index++;
      st.recv_from = tid_to_rank(node.children[c], root, nranks);
      st.recv_chunk = static_cast<std::size_t>(k);
      st.recv_tag = 2 * k + static_cast<int>(c);
      st.reduce = true;
      sched.steps.push_back(st);
    }
    if (node.parent >= 0) {
      CommStep st;
      st.index = index++;
      st.send_to = tid_to_rank(node.parent, root, nranks);
      st.send_chunk = static_cast<std::size_t>(k);
      st.send_tag = 2 * k + node.child_index;
      sched.steps.push_back(st);
    }
  }
  // Phase 2: broadcast the reduced chunks back down.
  const int base = 2 * kk;
  for (int k = 0; k < kk; ++k) {
    if (node.parent >= 0) {
      CommStep st;
      st.index = index++;
      st.recv_from = tid_to_rank(node.parent, root, nranks);
      st.recv_chunk = static_cast<std::size_t>(k);
      st.recv_tag = base + k;
      st.reduce = false;
      sched.steps.push_back(st);
    }
    for (int child : node.children) {
      CommStep st;
      st.index = index++;
      st.send_to = tid_to_rank(child, root, nranks);
      st.send_chunk = static_cast<std::size_t>(k);
      st.send_tag = base + k;
      sched.steps.push_back(st);
    }
  }
  return sched;
}

ChannelSchedule build_tree_broadcast_schedule(int nranks, int rank, int root,
                                              std::size_t num_chunks) {
  MCCS_EXPECTS(nranks >= 2);
  MCCS_EXPECTS(rank >= 0 && rank < nranks);
  MCCS_EXPECTS(root >= 0 && root < nranks);
  MCCS_EXPECTS(num_chunks >= 1);
  const int tid = ((rank - root) % nranks + nranks) % nranks;
  const TreeNode node = tree_node(nranks, tid);
  const int kk = static_cast<int>(num_chunks);

  ChannelSchedule sched;
  sched.num_chunks = num_chunks;
  int index = 0;
  for (int k = 0; k < kk; ++k) {
    if (node.parent >= 0) {
      CommStep st;
      st.index = index++;
      st.recv_from = tid_to_rank(node.parent, root, nranks);
      st.recv_chunk = static_cast<std::size_t>(k);
      st.recv_tag = k;
      st.reduce = false;
      sched.steps.push_back(st);
    }
    for (int child : node.children) {
      CommStep st;
      st.index = index++;
      st.send_to = tid_to_rank(child, root, nranks);
      st.send_chunk = static_cast<std::size_t>(k);
      st.send_tag = k;
      sched.steps.push_back(st);
    }
  }
  return sched;
}

std::vector<std::pair<int, int>> tree_edges(int nranks, int root,
                                            CollectiveKind kind) {
  MCCS_EXPECTS(nranks >= 2);
  std::vector<std::pair<int, int>> edges;
  for (int tid = 1; tid < nranks; ++tid) {
    const int parent = (tid - 1) / 2;
    const int up = tid_to_rank(tid, root, nranks);
    const int down = tid_to_rank(parent, root, nranks);
    // Broadcast flows down the tree, Reduce flows up (child -> parent), and
    // AllReduce uses both directions. The old form emitted the parent->child
    // edge unconditionally, which for kReduce is a phantom edge the schedule
    // never sends on (and omitted the child->parent edge it does send on) —
    // a flow assigner consuming the per-kind edge set would place capacity
    // on dead links and starve the live ones.
    if (kind != CollectiveKind::kReduce) edges.emplace_back(down, up);
    if (kind == CollectiveKind::kAllReduce || kind == CollectiveKind::kReduce) {
      edges.emplace_back(up, down);
    }
  }
  return edges;
}

ChannelSchedule build_chain_reduce_schedule(const RingOrder& order, int rank,
                                            int root) {
  const int n = static_cast<int>(order.size());
  MCCS_EXPECTS(n >= 2);
  const int pos = order.position_of(rank);
  const int root_pos = order.position_of(root);
  // Chain index: 0 at the position right after the root, n-1 at the root, so
  // data flows along ring-successor edges and terminates at the root.
  const int ci = ((pos - root_pos - 1) % n + n) % n;
  const int num_chunks = n;

  ChannelSchedule sched;
  sched.num_chunks = static_cast<std::size_t>(num_chunks);
  int index = 0;
  for (int k = 0; k < num_chunks; ++k) {
    if (ci > 0) {
      CommStep st;
      st.index = index++;
      st.recv_from = order.rank_at(pos - 1);
      st.recv_chunk = static_cast<std::size_t>(k);
      st.recv_tag = k;
      st.reduce = true;
      sched.steps.push_back(st);
    }
    if (ci < n - 1) {
      CommStep st;
      st.index = index++;
      st.send_to = order.rank_at(pos + 1);
      st.send_chunk = static_cast<std::size_t>(k);
      st.send_tag = k;
      sched.steps.push_back(st);
    }
  }
  return sched;
}

ChannelSchedule build_tree_reduce_schedule(int nranks, int rank, int root,
                                           std::size_t num_chunks) {
  MCCS_EXPECTS(nranks >= 2);
  MCCS_EXPECTS(num_chunks >= 1);
  const int tid = ((rank - root) % nranks + nranks) % nranks;
  const TreeNode node = tree_node(nranks, tid);
  const int kk = static_cast<int>(num_chunks);

  ChannelSchedule sched;
  sched.num_chunks = num_chunks;
  int index = 0;
  for (int k = 0; k < kk; ++k) {
    for (std::size_t c = 0; c < node.children.size(); ++c) {
      CommStep st;
      st.index = index++;
      st.recv_from = tid_to_rank(node.children[c], root, nranks);
      st.recv_chunk = static_cast<std::size_t>(k);
      st.recv_tag = 2 * k + static_cast<int>(c);
      st.reduce = true;
      sched.steps.push_back(st);
    }
    if (node.parent >= 0) {
      CommStep st;
      st.index = index++;
      st.send_to = tid_to_rank(node.parent, root, nranks);
      st.send_chunk = static_cast<std::size_t>(k);
      st.send_tag = 2 * k + node.child_index;
      sched.steps.push_back(st);
    }
  }
  return sched;
}

ChannelSchedule build_alltoall_schedule(int nranks, int rank) {
  MCCS_EXPECTS(nranks >= 2);
  ChannelSchedule sched;
  sched.num_chunks = static_cast<std::size_t>(nranks);
  int index = 0;
  for (int s = 1; s < nranks; ++s) {
    const int to = (rank + s) % nranks;
    const int from = (rank - s + nranks) % nranks;
    CommStep st;
    st.index = index++;
    st.send_to = to;
    st.send_chunk = static_cast<std::size_t>(to);  // my block destined for `to`
    st.send_tag = rank;                            // inbound tag = sender rank
    st.recv_from = from;
    st.recv_chunk = static_cast<std::size_t>(from);  // lands in block `from`
    st.recv_tag = from;
    st.reduce = false;
    sched.steps.push_back(st);
  }
  return sched;
}

ChannelSchedule build_gather_schedule(int nranks, int rank, int root) {
  MCCS_EXPECTS(nranks >= 2);
  MCCS_EXPECTS(root >= 0 && root < nranks);
  ChannelSchedule sched;
  sched.num_chunks = static_cast<std::size_t>(nranks);
  int index = 0;
  if (rank == root) {
    for (int q = 0; q < nranks; ++q) {
      if (q == root) continue;
      CommStep st;
      st.index = index++;
      st.recv_from = q;
      st.recv_chunk = static_cast<std::size_t>(q);  // block q of root's recv
      st.recv_tag = q;
      sched.steps.push_back(st);
    }
  } else {
    CommStep st;
    st.index = index++;
    st.send_to = root;
    st.send_chunk = 0;  // the sender's buffer is a single block
    st.send_tag = rank;
    sched.steps.push_back(st);
  }
  return sched;
}

ChannelSchedule build_scatter_schedule(int nranks, int rank, int root) {
  MCCS_EXPECTS(nranks >= 2);
  MCCS_EXPECTS(root >= 0 && root < nranks);
  ChannelSchedule sched;
  sched.num_chunks = static_cast<std::size_t>(nranks);
  int index = 0;
  if (rank == root) {
    for (int q = 0; q < nranks; ++q) {
      if (q == root) continue;
      CommStep st;
      st.index = index++;
      st.send_to = q;
      st.send_chunk = static_cast<std::size_t>(q);  // block q of root's send
      st.send_tag = q;
      sched.steps.push_back(st);
    }
  } else {
    CommStep st;
    st.index = index++;
    st.recv_from = root;
    st.recv_chunk = 0;  // the receiver's buffer is a single block
    st.recv_tag = rank;
    sched.steps.push_back(st);
  }
  return sched;
}

}  // namespace mccs::coll
