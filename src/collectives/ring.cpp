#include "collectives/ring.h"

namespace mccs::coll {
namespace {
int mod(int x, int n) { return ((x % n) + n) % n; }
}  // namespace

std::vector<RingStep> ring_allreduce_steps(int n, int position) {
  MCCS_EXPECTS(n >= 2);
  MCCS_EXPECTS(position >= 0 && position < n);
  std::vector<RingStep> steps;
  steps.reserve(static_cast<std::size_t>(2 * (n - 1)));
  // Reduce-scatter pass: at step s, position p sends chunk (p - s) and
  // reduces the received chunk (p - s - 1) into its buffer. After n-1 steps
  // position p holds the fully-reduced chunk (p + 1) mod n.
  for (int s = 0; s < n - 1; ++s) {
    RingStep st;
    st.index = s;
    st.send_chunk = static_cast<std::size_t>(mod(position - s, n));
    st.recv_chunk = static_cast<std::size_t>(mod(position - s - 1, n));
    st.reduce = true;
    st.send_tag = st.recv_tag = st.index;
    steps.push_back(st);
  }
  // All-gather pass: circulate the fully-reduced chunks.
  for (int s = 0; s < n - 1; ++s) {
    RingStep st;
    st.index = (n - 1) + s;
    st.send_chunk = static_cast<std::size_t>(mod(position + 1 - s, n));
    st.recv_chunk = static_cast<std::size_t>(mod(position - s, n));
    st.reduce = false;
    st.send_tag = st.recv_tag = st.index;
    steps.push_back(st);
  }
  return steps;
}

std::vector<RingStep> ring_allgather_steps(int n, int position) {
  MCCS_EXPECTS(n >= 2);
  MCCS_EXPECTS(position >= 0 && position < n);
  std::vector<RingStep> steps;
  steps.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 0; s < n - 1; ++s) {
    RingStep st;
    st.index = s;
    st.send_chunk = static_cast<std::size_t>(mod(position - s, n));
    st.recv_chunk = static_cast<std::size_t>(mod(position - s - 1, n));
    st.reduce = false;
    st.send_tag = st.recv_tag = st.index;
    steps.push_back(st);
  }
  return steps;
}

std::vector<RingStep> ring_reducescatter_steps(int n, int position) {
  MCCS_EXPECTS(n >= 2);
  MCCS_EXPECTS(position >= 0 && position < n);
  std::vector<RingStep> steps;
  steps.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 0; s < n - 1; ++s) {
    RingStep st;
    st.index = s;
    st.send_chunk = static_cast<std::size_t>(mod(position - s, n));
    st.recv_chunk = static_cast<std::size_t>(mod(position - s - 1, n));
    st.reduce = true;
    st.send_tag = st.recv_tag = st.index;
    steps.push_back(st);
  }
  return steps;
}

std::size_t reducescatter_owned_chunk(int n, int position) {
  return static_cast<std::size_t>(mod(position + 1, n));
}

std::vector<RingStep> ring_broadcast_steps(int n, int position) {
  MCCS_EXPECTS(n >= 2);
  MCCS_EXPECTS(position >= 0 && position < n);
  std::vector<RingStep> steps;
  if (position == 0) {
    // Root: stream every chunk to the successor.
    for (int k = 0; k < n; ++k) {
      RingStep st;
      st.index = k;
      st.send_chunk = static_cast<std::size_t>(k);
      st.send_tag = k;
      steps.push_back(st);
    }
  } else if (position == n - 1) {
    // Tail: only receive.
    for (int k = 0; k < n; ++k) {
      RingStep st;
      st.index = k;
      st.recv_chunk = static_cast<std::size_t>(k);
      st.recv_tag = k;
      steps.push_back(st);
    }
  } else {
    // Interior: receive chunk k while forwarding chunk k-1.
    for (int k = 0; k <= n; ++k) {
      RingStep st;
      st.index = k;
      if (k < n) {
        st.recv_chunk = static_cast<std::size_t>(k);
        st.recv_tag = k;
      }
      if (k >= 1) {
        st.send_chunk = static_cast<std::size_t>(k - 1);
        st.send_tag = k - 1;
      }
      steps.push_back(st);
    }
  }
  return steps;
}

std::size_t chunk_to_buffer_index(CollectiveKind kind, const RingOrder& order,
                                  std::size_t positional_chunk) {
  const int n = static_cast<int>(order.size());
  const int c = static_cast<int>(positional_chunk);
  MCCS_EXPECTS(c >= 0 && c < n);
  switch (kind) {
    case CollectiveKind::kAllReduce:
    case CollectiveKind::kBroadcast:
      return positional_chunk;
    case CollectiveKind::kAllGather:
      return static_cast<std::size_t>(order.rank_at(c));
    case CollectiveKind::kReduceScatter:
      return static_cast<std::size_t>(order.rank_at(c - 1));
    case CollectiveKind::kReduce:
    case CollectiveKind::kAllToAll:
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
      break;  // no positional ring chunks; handled by dedicated schedules
  }
  MCCS_CHECK(false, "collective kind has no ring chunk mapping");
  return 0;
}

}  // namespace mccs::coll
