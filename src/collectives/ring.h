#pragma once
// Ring collective algorithm schedules (the algorithms MCCS ports from NCCL's
// ring kernels, §5). A schedule describes, for the participant at ring
// position p out of n, which buffer chunk it sends to its successor and which
// it receives from its predecessor at every step, plus whether the received
// chunk is reduced into the local buffer or copied.
//
// The schedules operate on *positions* in a ring ordering, not ranks: the
// ring ordering (rank permutation) is exactly the knob MCCS's locality-aware
// ring-configuration policy turns, so it is kept separate (RingOrder).

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "collectives/types.h"

namespace mccs::coll {

/// A ring ordering: order[p] = rank occupying ring position p.
/// Identity order (NCCL's default inter-host behaviour) is order[p] = p.
class RingOrder {
 public:
  explicit RingOrder(std::vector<int> order) : order_(std::move(order)) {
    MCCS_EXPECTS(!order_.empty());
    std::vector<bool> seen(order_.size(), false);
    for (int r : order_) {
      MCCS_EXPECTS(r >= 0 && static_cast<std::size_t>(r) < order_.size());
      MCCS_CHECK(!seen[static_cast<std::size_t>(r)], "ring order must be a permutation");
      seen[static_cast<std::size_t>(r)] = true;
    }
    position_of_.resize(order_.size());
    for (std::size_t p = 0; p < order_.size(); ++p) {
      position_of_[static_cast<std::size_t>(order_[p])] = static_cast<int>(p);
    }
  }

  static RingOrder identity(std::size_t n) {
    std::vector<int> o(n);
    for (std::size_t i = 0; i < n; ++i) o[i] = static_cast<int>(i);
    return RingOrder(std::move(o));
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] int rank_at(int position) const {
    return order_[static_cast<std::size_t>(mod(position))];
  }
  [[nodiscard]] int position_of(int rank) const {
    MCCS_EXPECTS(rank >= 0 && static_cast<std::size_t>(rank) < order_.size());
    return position_of_[static_cast<std::size_t>(rank)];
  }
  /// Rank this rank sends to (its ring successor).
  [[nodiscard]] int next_rank(int rank) const {
    return rank_at(position_of(rank) + 1);
  }
  /// Rank this rank receives from (its ring predecessor).
  [[nodiscard]] int prev_rank(int rank) const {
    return rank_at(position_of(rank) - 1);
  }
  [[nodiscard]] const std::vector<int>& order() const { return order_; }

  [[nodiscard]] RingOrder reversed() const {
    std::vector<int> rev(order_.rbegin(), order_.rend());
    return RingOrder(std::move(rev));
  }

  friend bool operator==(const RingOrder& a, const RingOrder& b) {
    return a.order_ == b.order_;
  }

 private:
  [[nodiscard]] int mod(int p) const {
    const int n = static_cast<int>(order_.size());
    return ((p % n) + n) % n;
  }

  std::vector<int> order_;
  std::vector<int> position_of_;
};

/// Sentinel: this step has no send (or no recv) half.
inline constexpr std::size_t kNoChunk = static_cast<std::size_t>(-1);

/// One ring step for one participant.
///
/// Transfers are matched between neighbours by *tag*, not step index: the
/// sender labels the transfer `send_tag` and the receiver waits for its
/// current step's `recv_tag`. For the symmetric schedules (AllReduce,
/// AllGather, ReduceScatter) tags equal the step index on both sides; for
/// the pipelined Broadcast chain the sender's step k forwards chunk k-1,
/// which the receiver awaits at its own step k-1, so tags are chunk indices.
struct RingStep {
  int index = 0;           ///< step number, 0-based
  std::size_t send_chunk = kNoChunk;  ///< chunk index sent to the successor
  std::size_t recv_chunk = kNoChunk;  ///< chunk index received from the predecessor
  bool reduce = false;     ///< reduce received data into local chunk (vs copy)
  int send_tag = -1;       ///< transfer tag attached to the send
  int recv_tag = -1;       ///< transfer tag this step's recv waits for

  [[nodiscard]] bool has_send() const { return send_chunk != kNoChunk; }
  [[nodiscard]] bool has_recv() const { return recv_chunk != kNoChunk; }
};

/// Chunk boundaries: chunk i of `count` elements split n ways.
struct ChunkRange {
  std::size_t begin_elem = 0;
  std::size_t count_elem = 0;
};

inline ChunkRange chunk_range(std::size_t total_elems, std::size_t n_chunks,
                              std::size_t chunk) {
  MCCS_EXPECTS(chunk < n_chunks);
  const std::size_t b = total_elems * chunk / n_chunks;
  const std::size_t e = total_elems * (chunk + 1) / n_chunks;
  return ChunkRange{b, e - b};
}

// --- per-position step schedules -------------------------------------------
// All schedules below operate on a logical buffer of n chunks.

/// Ring AllReduce: 2(n-1) steps — a reduce-scatter pass followed by an
/// all-gather pass. Works in-place on a buffer holding all n chunks.
std::vector<RingStep> ring_allreduce_steps(int n, int position);

/// Ring AllGather: n-1 steps over the output buffer of n chunks, where chunk
/// r initially holds rank r's contribution only at position_of(r).
std::vector<RingStep> ring_allgather_steps(int n, int position);

/// Ring ReduceScatter: the first n-1 steps of ring AllReduce; afterwards the
/// chunk at index `position + 1 (mod n)`... (see .cpp) holds the full
/// reduction for that position's output.
std::vector<RingStep> ring_reducescatter_steps(int n, int position);

/// Chunk index that holds this position's fully-reduced output after the
/// reduce-scatter pass.
std::size_t reducescatter_owned_chunk(int n, int position);

/// Ring (pipelined chain) Broadcast with the root at ring position 0 and n
/// chunks: the root streams chunks down the chain; interior positions
/// receive chunk k while forwarding chunk k-1; the tail only receives.
std::vector<RingStep> ring_broadcast_steps(int n, int position);

/// Map a positional chunk index to the index of the chunk in the user's
/// buffer. AllReduce/Broadcast chunks are arbitrary partitions (identity);
/// AllGather output chunk r holds rank r's contribution; ReduceScatter's
/// assignment is rotated so each rank ends up owning its own output chunk.
std::size_t chunk_to_buffer_index(CollectiveKind kind, const RingOrder& order,
                                  std::size_t positional_chunk);

// --- aggregate (flow-level) edge volumes ------------------------------------
// Total bytes a ring collective pushes over *each* ring edge; used by the
// large-scale simulator and the bandwidth math below.

inline double allreduce_edge_volume(int n, Bytes total_bytes) {
  MCCS_EXPECTS(n >= 2);
  return 2.0 * (n - 1) / n * static_cast<double>(total_bytes);
}
inline double allgather_edge_volume(int n, Bytes total_output_bytes) {
  MCCS_EXPECTS(n >= 2);
  return static_cast<double>(n - 1) / n * static_cast<double>(total_output_bytes);
}
inline double reducescatter_edge_volume(int n, Bytes total_input_bytes) {
  return allgather_edge_volume(n, total_input_bytes);
}
inline double broadcast_edge_volume(int /*n*/, Bytes total_bytes) {
  return static_cast<double>(total_bytes);
}

// --- nccl-tests bandwidth math ----------------------------------------------
// algbw = size / time; busbw = algbw * factor, where the factor makes the
// number comparable across collectives and participant counts
// (github.com/NVIDIA/nccl-tests/blob/master/doc/PERFORMANCE.md).

inline double bus_bandwidth_factor(CollectiveKind kind, int n) {
  MCCS_EXPECTS(n >= 2);
  switch (kind) {
    case CollectiveKind::kAllReduce: return 2.0 * (n - 1) / n;
    case CollectiveKind::kAllGather: return static_cast<double>(n - 1) / n;
    case CollectiveKind::kReduceScatter: return static_cast<double>(n - 1) / n;
    case CollectiveKind::kBroadcast: return 1.0;
    case CollectiveKind::kReduce: return 1.0;
    case CollectiveKind::kAllToAll: return static_cast<double>(n - 1) / n;
    case CollectiveKind::kGather: return static_cast<double>(n - 1) / n;
    case CollectiveKind::kScatter: return static_cast<double>(n - 1) / n;
  }
  return 1.0;
}

inline Bandwidth algorithm_bandwidth(Bytes size, Time elapsed) {
  MCCS_EXPECTS(elapsed > 0.0);
  return static_cast<double>(size) / elapsed;
}

inline Bandwidth bus_bandwidth(CollectiveKind kind, int n, Bytes size, Time elapsed) {
  return algorithm_bandwidth(size, elapsed) * bus_bandwidth_factor(kind, n);
}

}  // namespace mccs::coll
