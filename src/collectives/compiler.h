#pragma once
// Collective plan compiler: a small IR and three passes that lower any
// (CollectiveKind, Algorithm) pair into the per-rank ChannelSchedule the
// proxy engine executes (the GC3 / HiCCL structure: compile the collective
// once, execute the plan many times — arXiv:2201.11840 / 2408.05962).
//
// Passes, in order:
//
//  1. DECOMPOSITION — rewrite the collective as a list of phases over a
//     shared chunked buffer: AllReduce becomes ReduceScatter + AllGather
//     (ring, pairwise) or Reduce + Broadcast (tree, double binary tree);
//     Gather/Scatter lower as the copy-duals of Reduce/Broadcast over a
//     root star. Each phase gets a disjoint tag base so the concatenated
//     schedule keeps the one-slot-per-tag invariant build_coll_plan checks.
//
//  2. HIERARCHY — bind the phase structure to the topology. Ring phases run
//     over the strategy's RingOrder, which the locality policy builds as
//     intra-host runs chained host to host (intra-host chunked ring, one
//     cross-host flow per adjacent host pair); mesh phases exchange in ring-
//     position space, so with a locality order the early rounds are the
//     same-host neighbours and cross-host traffic spreads over later rounds.
//     The pass also summarises the topology (host count, cross-host edge
//     count) for the cost model and the benches.
//
//  3. LOWERING / ALGORITHM BINDING — emit CommSteps per phase. Under kRing
//     the emission is bit-identical to the hand-written builders in
//     schedule.cpp (build_ring_schedule / build_chain_reduce_schedule /
//     star / mesh builders) — the paper-figure goldens depend on that, and
//     test_compiler.cpp checks it step for step. kTree reuses the rotated
//     complete-binary-tree builders; kDoubleBinaryTree splits the chunk
//     range across two differently-rooted trees; kPairwise exchanges
//     directly over the mesh.
//
// Algorithm choice itself (choose_algorithm) is a separate selection pass
// over the analytic alpha-beta cost model: the controller runs it per
// topology + message size and installs the winner through the Fig.-4
// barrier; the compiler then lowers whatever the strategy says.
//
// Fallback contract (kinds an algorithm cannot express):
//   * AllGather/ReduceScatter under kTree / kDoubleBinaryTree -> ring
//     (their outputs are ring-structured by construction);
//   * Reduce under kDoubleBinaryTree -> single tree (one root wants the
//     full result, so twin roots buy nothing);
//   * AllToAll is always the pairwise mesh; Gather/Scatter always the root
//     star (a non-root relay would need peers' blocks the buffer model
//     gives them no room to hold).
// selectable_algorithms() names the algorithms that change the schedule for
// a kind; the fallbacks make every (kind, algorithm) pair executable.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "collectives/ring.h"
#include "collectives/schedule.h"
#include "collectives/types.h"
#include "common/units.h"

namespace mccs::coll {

/// Decomposition-pass vocabulary: what one phase does...
enum class PhaseOp {
  kReduceScatter,
  kAllGather,
  kReduce,
  kBroadcast,
  kAllToAll,
  kGather,
  kScatter,
};

/// ...and the peer structure it runs over.
enum class PhaseShape {
  kRing,   ///< ring-order neighbour exchange (positional chunks)
  kChain,  ///< pipelined chain along the ring order, terminating at a root
  kTree,   ///< rotated complete binary tree
  kMesh,   ///< direct pairwise exchange, round-robin in position space
  kStar,   ///< root <-> every other rank directly
};

/// One phase of the decomposed collective (the IR node).
struct PhasePlan {
  PhaseOp op = PhaseOp::kAllGather;
  PhaseShape shape = PhaseShape::kRing;
  int root = 0;       ///< rank-space root (trees, chains, stars)
  int tag_base = 0;   ///< first tag this phase may use (disjoint per phase)
  std::size_t chunk_begin = 0;  ///< buffer chunk subset [begin, end)
  std::size_t chunk_end = 0;

  friend bool operator==(const PhasePlan&, const PhasePlan&) = default;
};

/// Everything the compiler needs about one (collective, channel, rank).
struct CompileInput {
  CollectiveKind kind = CollectiveKind::kAllReduce;
  Algorithm algorithm = Algorithm::kRing;
  int nranks = 0;
  int rank = 0;
  int root = 0;
  /// The channel's ring order (hierarchy pass input: the locality policy
  /// encodes the intra-host runs here). Required.
  const RingOrder* order = nullptr;
  /// Pipeline granularity of tree algorithms (CommStrategy setting).
  std::size_t tree_chunks = 8;
  /// Host of every rank, for the hierarchy summary. Optional (empty =>
  /// single-host assumed).
  const std::vector<int>* host_of_rank = nullptr;
};

/// Hierarchy-pass summary of the communicator's topology.
struct HierarchySummary {
  int nhosts = 1;
  int cross_host_ring_edges = 0;  ///< ring-successor edges crossing hosts

  friend bool operator==(const HierarchySummary&, const HierarchySummary&) =
      default;
};

/// Compilation result: the executable schedule plus the IR that produced it.
struct CompiledSchedule {
  ChannelSchedule schedule;
  bool is_ring = false;  ///< positional (ring) execution semantics
  int my_position = 0;   ///< ring position of `rank` (ring mode only)
  std::vector<PhasePlan> phases;  ///< decomposition record
  HierarchySummary hierarchy;
};

/// Run all passes for one (collective, channel, rank).
CompiledSchedule compile_collective(const CompileInput& in);

/// Algorithms that produce a distinct schedule for `kind` (the compiler's
/// search space; the correctness sweep enumerates exactly this).
std::vector<Algorithm> selectable_algorithms(CollectiveKind kind);

/// The (src rank, dst rank) superset a compiled schedule of `algorithm` can
/// send on over `order`, across all kinds — the edge list flow assignment
/// places demand for. For kRing this enumerates ring successors in position
/// order (identical to the historical assigner loop); kTree matches
/// tree_edges(n, 0, kAllReduce). test_compiler.cpp property-checks that
/// every compiled schedule's send edges are covered.
std::vector<std::pair<int, int>> algorithm_edges(Algorithm algorithm,
                                                 const RingOrder& order);

// --- algorithm-choice pass (analytic alpha-beta cost model) -----------------

/// Model inputs, derivable from ServiceConfig + topology: `alpha` is the
/// per-step latency of one schedule hop (transport overhead + path latency),
/// `beta` the seconds-per-byte of the bottleneck (cross-host) link.
struct CostParams {
  Time alpha = 20e-6;
  double beta = 8e-11;  ///< 1 / (12.5 GB/s)
};

/// Predicted completion time of one collective of `bytes` bytes under
/// `algorithm` (fallbacks included: the cost of the schedule actually run).
Time algorithm_cost(Algorithm algorithm, CollectiveKind kind, int nranks,
                    Bytes bytes, const CostParams& p);

/// argmin of algorithm_cost over selectable_algorithms(kind); ties break to
/// the earlier enum value (kRing first), so the default wins when equal.
Algorithm choose_algorithm(CollectiveKind kind, int nranks, Bytes bytes,
                           const CostParams& p);

/// Fingerprint of the pass pipeline plus every strategy knob (beyond the
/// algorithm itself) that shapes emitted plans. Folded into the plan-cache
/// key next to the algorithm: two strategies that agree on shape but not on
/// fingerprint must never share a cached plan.
std::uint32_t compiler_fingerprint(std::size_t tree_pipeline_chunks);

}  // namespace mccs::coll
