// Vectorized elementwise reduction kernels behind coll::reduce_bytes.
//
// The hot shape is the proxy engine's per-delivery reduce of one chunk into
// the work buffer (ring/tree AllReduce, ReduceScatter, Reduce). The old
// implementation dispatched on the op inside a header-inline loop over
// possibly-aliasing pointers, which the optimizer could rarely do much with.
// Here every (type, op) pair gets its own loop over __restrict pointers,
// compiled at -O3 (see CMakeLists.txt) so it auto-vectorizes.
//
// All ops are elementwise — no reassociation is involved — so the vector
// forms are bit-identical to the scalar reference (reduce_bytes_reference in
// types.h), which the exhaustive oracle test asserts.
//
// Above kParallelMinBytes the buffer is additionally sharded across the task
// pool in fixed kShardBytes chunks. Elementwise ops touch each element
// exactly once with no cross-element dependency, so any contiguous split is
// bitwise identical to the unsharded loop — the thread count can never change
// a result (tests/test_parallel.cpp cross-checks threads=1 vs threads=8).

#include "collectives/types.h"
#include "common/parallel.h"

namespace mccs::coll {
namespace {

/// Shard only buffers big enough that a dispatch (~1 µs) is noise against
/// the memory traffic; below this the single-thread vector loop wins.
constexpr std::size_t kParallelMinBytes = std::size_t{1} << 20;
/// Fixed shard size: boundaries depend only on the buffer size, never on the
/// thread count (the pool's determinism contract, though elementwise ops
/// would be split-invariant anyway).
constexpr std::size_t kShardBytes = std::size_t{256} << 10;

struct SumOp {
  template <class T>
  static T apply(T a, T b) { return a + b; }
};
struct ProdOp {
  template <class T>
  static T apply(T a, T b) { return a * b; }
};
struct MinOp {
  template <class T>
  static T apply(T a, T b) { return b < a ? b : a; }
};
struct MaxOp {
  template <class T>
  static T apply(T a, T b) { return b > a ? b : a; }
};

template <class T, class Op>
void reduce_loop(std::byte* acc, const std::byte* in, std::size_t bytes) {
  T* __restrict a = reinterpret_cast<T*>(acc);
  const T* __restrict b = reinterpret_cast<const T*>(in);
  const std::size_t n = bytes / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) a[i] = Op::apply(a[i], b[i]);
}

template <class T>
void reduce_typed(std::byte* acc, const std::byte* in, std::size_t bytes,
                  ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: reduce_loop<T, SumOp>(acc, in, bytes); break;
    case ReduceOp::kProd: reduce_loop<T, ProdOp>(acc, in, bytes); break;
    case ReduceOp::kMin: reduce_loop<T, MinOp>(acc, in, bytes); break;
    case ReduceOp::kMax: reduce_loop<T, MaxOp>(acc, in, bytes); break;
  }
}

void reduce_dispatch(std::byte* a, const std::byte* b, std::size_t bytes,
                     DataType dtype, ReduceOp op) {
  switch (dtype) {
    case DataType::kFloat32: reduce_typed<float>(a, b, bytes, op); break;
    case DataType::kFloat64: reduce_typed<double>(a, b, bytes, op); break;
    case DataType::kInt32: reduce_typed<std::int32_t>(a, b, bytes, op); break;
    case DataType::kInt64: reduce_typed<std::int64_t>(a, b, bytes, op); break;
    case DataType::kUint8: reduce_typed<std::uint8_t>(a, b, bytes, op); break;
  }
}

}  // namespace

void reduce_bytes(std::span<std::byte> acc, std::span<const std::byte> in,
                  DataType dtype, ReduceOp op) {
  MCCS_EXPECTS(acc.size() == in.size());
  MCCS_EXPECTS(acc.size() % dtype_size(dtype) == 0);
  std::byte* a = acc.data();
  const std::byte* b = in.data();
  const std::size_t bytes = acc.size();
  if (bytes >= kParallelMinBytes && par::thread_count() > 1) {
    // Shard across the pool: elements per shard, rounded to whole elements
    // so every (begin, end) range is dtype-aligned within the buffer.
    const std::size_t elem = dtype_size(dtype);
    const std::size_t n = bytes / elem;
    const std::size_t grain = kShardBytes / elem;
    par::parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      reduce_dispatch(a + begin * elem, b + begin * elem, (end - begin) * elem,
                      dtype, op);
    });
    return;
  }
  reduce_dispatch(a, b, bytes, dtype, op);
}

}  // namespace mccs::coll
