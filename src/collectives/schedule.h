#pragma once
// Generalized per-rank communication schedules.
//
// The proxy engine executes a ChannelSchedule: an ordered list of CommSteps,
// each naming an optional send (peer rank + buffer chunk + tag) and an
// optional receive (tag + chunk + reduce/copy). Ring algorithms (ring.h) are
// lowered into this form with peers resolved through the ring ordering and
// positional chunks mapped to buffer chunks; tree algorithms (§5 "other
// algorithms, e.g., tree algorithms") are generated directly.
//
// Buffer partition semantics: the logical work buffer is divided into
// `num_chunks` pieces. For AllGather/ReduceScatter these are the fixed
// per-rank blocks (num_chunks == nranks); for AllReduce/Broadcast they are
// arbitrary near-equal ranges, so trees may pick a different pipeline
// granularity than rings.

#include <cstddef>
#include <vector>

#include "collectives/ring.h"
#include "collectives/types.h"

namespace mccs::coll {

struct CommStep {
  int index = 0;
  int send_to = -1;  ///< destination rank; -1 = no send half
  std::size_t send_chunk = kNoChunk;  ///< buffer chunk index
  int send_tag = -1;
  int recv_from = -1;  ///< source rank (informational; matching is by tag)
  std::size_t recv_chunk = kNoChunk;
  int recv_tag = -1;
  bool reduce = false;  ///< reduce received chunk into local (vs overwrite)

  [[nodiscard]] bool has_send() const { return send_to >= 0; }
  [[nodiscard]] bool has_recv() const { return recv_tag >= 0; }
};

struct ChannelSchedule {
  std::vector<CommStep> steps;
  std::size_t num_chunks = 0;  ///< partition granularity of the work buffer
};

/// Lower a ring algorithm for `rank` under `order` into a ChannelSchedule.
/// `root` is used by Broadcast only.
ChannelSchedule build_ring_schedule(CollectiveKind kind, const RingOrder& order,
                                    int rank, int root = 0);

// --- binary-tree algorithms ---------------------------------------------------
// A complete binary tree over ranks rotated so `root` is the tree root
// (node i's parent is (i-1)/2 in rotated space). Pipelined over `num_chunks`
// buffer chunks: AllReduce reduces chunk-by-chunk up the tree then broadcasts
// down; Broadcast streams chunks down. Latency scales with 2*log2(n) + the
// pipeline depth instead of the ring's 2(n-1) — the classic small-message
// win the ring/tree ablation bench measures.

/// Tree AllReduce (reduce-to-root + broadcast); every rank ends with the
/// full reduction.
ChannelSchedule build_tree_allreduce_schedule(int nranks, int rank,
                                              std::size_t num_chunks);

/// Tree Broadcast from `root`.
ChannelSchedule build_tree_broadcast_schedule(int nranks, int rank, int root,
                                              std::size_t num_chunks);

/// Edges (src rank -> dst rank) a tree schedule uses, for flow assignment.
std::vector<std::pair<int, int>> tree_edges(int nranks, int root,
                                            CollectiveKind kind);

/// Chain (pipelined ring-order) Reduce: data flows along the ring towards
/// `root`, each hop reducing; only the root holds the result.
ChannelSchedule build_chain_reduce_schedule(const RingOrder& order, int rank,
                                            int root);

/// Tree Reduce: the reduce half of the tree AllReduce, rooted at `root`.
ChannelSchedule build_tree_reduce_schedule(int nranks, int rank, int root,
                                           std::size_t num_chunks);

/// Pairwise AllToAll: at exchange step s, rank r sends its send-buffer block
/// (r + s) mod n to that rank and receives block r of rank (r - s) mod n.
/// Source and destination blocks differ — the executor reads the sender's
/// block `send_chunk` and writes the receiver's block `recv_chunk`.
ChannelSchedule build_alltoall_schedule(int nranks, int rank);

/// Star Gather: every non-root sends its (single-block) buffer straight to
/// the root, which stores it at block index of the sender.
ChannelSchedule build_gather_schedule(int nranks, int rank, int root);

/// Star Scatter: the root sends block j of its buffer to rank j.
ChannelSchedule build_scatter_schedule(int nranks, int rank, int root);

}  // namespace mccs::coll
