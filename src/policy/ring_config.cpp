#include "policy/ring_config.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace mccs::policy {

std::vector<int> locality_aware_order(const std::vector<GpuId>& gpus_by_rank,
                                      const cluster::Cluster& cluster) {
  MCCS_EXPECTS(!gpus_by_rank.empty());
  // Sort ranks by (pod, rack, host, local index): a stable chain that visits
  // every host once, every rack contiguously.
  std::vector<int> order(gpus_by_rank.size());
  for (std::size_t r = 0; r < order.size(); ++r) order[r] = static_cast<int>(r);
  auto key = [&](int rank) {
    const GpuId g = gpus_by_rank[static_cast<std::size_t>(rank)];
    const HostId h = cluster.host_of_gpu(g);
    const auto& info = cluster.host(h);
    return std::make_tuple(info.pod.get(), info.rack.get(), h.get(),
                           cluster.local_index(g));
  };
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return key(a) < key(b); });
  return order;
}

svc::CommStrategy locality_aware_strategy(const std::vector<GpuId>& gpus_by_rank,
                                          const cluster::Cluster& cluster) {
  std::map<std::uint32_t, int> per_host;
  int max_local = 1;
  for (GpuId g : gpus_by_rank) {
    max_local = std::max(max_local, ++per_host[cluster.host_of_gpu(g).get()]);
  }
  svc::CommStrategy s;
  s.channel_orders = svc::make_channel_orders(
      locality_aware_order(gpus_by_rank, cluster), gpus_by_rank, cluster,
      max_local);
  return s;
}

int cross_rack_edges(const std::vector<int>& order,
                     const std::vector<GpuId>& gpus_by_rank,
                     const cluster::Cluster& cluster) {
  MCCS_EXPECTS(order.size() == gpus_by_rank.size());
  const std::size_t n = order.size();
  int crossings = 0;
  for (std::size_t p = 0; p < n; ++p) {
    const GpuId a = gpus_by_rank[static_cast<std::size_t>(order[p])];
    const GpuId b = gpus_by_rank[static_cast<std::size_t>(order[(p + 1) % n])];
    if (cluster.rack_of_gpu(a) != cluster.rack_of_gpu(b)) ++crossings;
  }
  return crossings;
}

int optimal_cross_rack_edges(const std::vector<GpuId>& gpus_by_rank,
                             const cluster::Cluster& cluster) {
  return cross_rack_edges(locality_aware_order(gpus_by_rank, cluster),
                          gpus_by_rank, cluster);
}

}  // namespace mccs::policy
