#pragma once
// Locality-aware ring configuration (§4.3, example #1).
//
// The ordering of hosts in a ring dictates the communication pattern; a ring
// that zig-zags between racks pushes up to 2x (testbed) / 4x (4-hosts-per-
// rack, Fig. 3) more flows through the oversubscribed leaf-spine links than
// necessary. The provider groups the participant GPUs by host, hosts by
// rack, racks by pod, and chains the groups sequentially, which touches each
// rack boundary exactly once around the ring.

#include <vector>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "mccs/strategy.h"

namespace mccs::policy {

/// Rank ordering (order[p] = rank at ring position p) that chains GPUs
/// host-by-host, hosts rack-by-rack, racks pod-by-pod.
std::vector<int> locality_aware_order(const std::vector<GpuId>& gpus_by_rank,
                                      const cluster::Cluster& cluster);

/// Full strategy: locality-aware base order expanded into per-channel rings
/// (one channel per NIC on the communicator's busiest host). Routes are left
/// empty (ECMP) — flow assignment is a separate policy.
svc::CommStrategy locality_aware_strategy(const std::vector<GpuId>& gpus_by_rank,
                                          const cluster::Cluster& cluster);

/// Number of ring edges that cross a rack boundary under `order` — the
/// numerator of Fig. 3's cross-rack ratio.
int cross_rack_edges(const std::vector<int>& order,
                     const std::vector<GpuId>& gpus_by_rank,
                     const cluster::Cluster& cluster);

/// Cross-rack edges of the optimal (locality-aware) ring for these GPUs —
/// the denominator of Fig. 3's cross-rack ratio.
int optimal_cross_rack_edges(const std::vector<GpuId>& gpus_by_rank,
                             const cluster::Cluster& cluster);

}  // namespace mccs::policy
