#pragma once
// Flow assignment policies (§4.3, examples #2 and #3).
//
// Once ring configurations are fixed, the set of inter-host flows (one RDMA
// connection per channel per ring edge) is fully determined. ECMP may hash
// several of them onto the same physical path; the provider instead assigns
// each flow an explicit route:
//
//  * FFA (best-fit fair flow assignment) — Hedera-style greedy: each flow is
//    placed on the path with minimal excess bandwidth demand, round-robining
//    between applications for fairness;
//  * PFA (priority flow assignment) — some routes are reserved for
//    high-priority applications: low-priority flows are fitted using only
//    non-reserved routes; high-priority flows pick the best route from all.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "common/units.h"
#include "mccs/strategy.h"
#include "netsim/routing.h"
#include "telemetry/telemetry.h"

namespace mccs::net {
class Network;
}

namespace mccs::policy {

/// One communicator whose flows need placement.
struct AssignItem {
  CommId comm;
  AppId app;
  const std::vector<GpuId>* gpus_by_rank = nullptr;
  const svc::CommStrategy* strategy = nullptr;
  bool high_priority = false;  ///< PFA only
};

struct AssignOptions {
  /// Route indices reserved for high-priority apps (PFA). Empty => plain FFA.
  std::unordered_set<std::uint32_t> reserved_routes;

  /// Live network telemetry. When set, best-fit scoring adds each candidate
  /// link's measured throughput (an O(1) read of the Network's per-link
  /// index) to the modelled demand, so the assignment steers around traffic
  /// the demand model cannot see — chiefly background/external flows (the
  /// Fig.-7 scenario). Collectives being reassigned are typically mid-flight,
  /// so their own live rates inflate every candidate of every path they
  /// already use; the demand model remains the primary signal and the live
  /// term breaks its ties. Null (default) preserves the pure-demand scoring.
  const net::Network* network = nullptr;

  /// Links the controller has confirmed failed (by LinkId value). Paths
  /// crossing any of them are excluded from best-fit placement; if EVERY
  /// path between a pair crosses a failed link (no surviving route), the
  /// exclusion is dropped for that flow — transport-level retry remains the
  /// only recourse there.
  std::unordered_set<std::uint32_t> failed_links;

  /// Fabric telemetry + the virtual time of this assignment run. When the
  /// timeline is enabled, every placement decision drops an instant event
  /// (policy category) carrying the chosen route and its best-fit score.
  telemetry::Telemetry* telemetry = nullptr;
  Time now = 0.0;
};

/// Route map per communicator: CommStrategy::route_key -> RouteId.
using RouteMap = std::unordered_map<std::uint64_t, RouteId>;

/// Compute explicit routes for every inter-host connection of every item.
/// Deterministic: same input, same placement.
std::unordered_map<std::uint32_t, RouteMap> assign_flows(
    const std::vector<AssignItem>& items, const cluster::Cluster& cluster,
    const net::Routing& routing, const AssignOptions& options = {});

/// Wall-clock cost of one assign_flows run, for the §6.5 claim that schedule
/// computation stays around a millisecond and scales linearly with job size.
double measure_assign_seconds(const std::vector<AssignItem>& items,
                              const cluster::Cluster& cluster,
                              const net::Routing& routing);

}  // namespace mccs::policy
