#pragma once
// Flow assignment policies (§4.3, examples #2 and #3).
//
// Once ring configurations are fixed, the set of inter-host flows (one RDMA
// connection per channel per ring edge) is fully determined. ECMP may hash
// several of them onto the same physical path; the provider instead assigns
// each flow an explicit route:
//
//  * FFA (best-fit fair flow assignment) — Hedera-style greedy: each flow is
//    placed on the path with minimal excess bandwidth demand, round-robining
//    between applications for fairness;
//  * PFA (priority flow assignment) — some routes are reserved for
//    high-priority applications: low-priority flows are fitted using only
//    non-reserved routes; high-priority flows pick the best route from all.

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/ids.h"
#include "common/units.h"
#include "mccs/strategy.h"
#include "netsim/routing.h"
#include "telemetry/telemetry.h"

namespace mccs::net {
class Network;
}

namespace mccs::policy {

/// One communicator whose flows need placement.
struct AssignItem {
  CommId comm;
  AppId app;
  const std::vector<GpuId>* gpus_by_rank = nullptr;
  const svc::CommStrategy* strategy = nullptr;
  bool high_priority = false;  ///< PFA only
};

struct AssignOptions {
  /// Route indices reserved for high-priority apps (PFA). Empty => plain FFA.
  std::unordered_set<std::uint32_t> reserved_routes;

  /// Live network telemetry. When set, best-fit scoring adds each candidate
  /// link's measured throughput (an O(1) read of the Network's per-link
  /// index) to the modelled demand, so the assignment steers around traffic
  /// the demand model cannot see — chiefly background/external flows (the
  /// Fig.-7 scenario). Collectives being reassigned are typically mid-flight,
  /// so their own live rates inflate every candidate of every path they
  /// already use; the demand model remains the primary signal and the live
  /// term breaks its ties. Null (default) preserves the pure-demand scoring.
  const net::Network* network = nullptr;

  /// Links the controller has confirmed failed (by LinkId value). Paths
  /// crossing any of them are excluded from best-fit placement; if EVERY
  /// path between a pair crosses a failed link (no surviving route), the
  /// exclusion is dropped for that flow — transport-level retry remains the
  /// only recourse there.
  std::unordered_set<std::uint32_t> failed_links;

  /// Fabric telemetry + the virtual time of this assignment run. When the
  /// timeline is enabled, every placement decision drops an instant event
  /// (policy category) carrying the chosen route and its best-fit score.
  telemetry::Telemetry* telemetry = nullptr;
  Time now = 0.0;
};

/// Route map per communicator: CommStrategy::route_key -> RouteId.
using RouteMap = std::unordered_map<std::uint64_t, RouteId>;

/// Order-insensitive FNV-1a digest of a full assignment (comms ascending,
/// route keys ascending within each comm; comms with no routed flows are
/// skipped, so the one-shot solver's map shape and the warm assigner's
/// agree). The canonical "same assignment" check for benches, audits, and
/// the chaos invariants — two assignments digest equal iff their routed
/// flows match exactly.
std::uint64_t assignment_digest(
    const std::unordered_map<std::uint32_t, RouteMap>& assignment);
/// Fold `v` into a running FNV-1a digest `h` (seed with kFnvOffset).
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
void fold_digest(std::uint64_t& h, std::uint64_t v);

/// Compute explicit routes for every inter-host connection of every item.
/// Deterministic: same input, same placement.
std::unordered_map<std::uint32_t, RouteMap> assign_flows(
    const std::vector<AssignItem>& items, const cluster::Cluster& cluster,
    const net::Routing& routing, const AssignOptions& options = {});

/// Wall-clock cost of one assign_flows run, for the §6.5 claim that schedule
/// computation stays around a millisecond and scales linearly with job size.
double measure_assign_seconds(const std::vector<AssignItem>& items,
                              const cluster::Cluster& cluster,
                              const net::Routing& routing);

/// One inter-host connection awaiting a route — the unit both solvers place.
struct PendingFlow {
  std::size_t item_index = 0;  ///< position in the one-shot batch (unused by
                               ///< the incremental solver, which keys by comm)
  std::uint64_t route_key = 0; ///< CommStrategy::route_key(channel, src, dst)
  NodeId src;
  NodeId dst;
  Bandwidth demand = 0.0;  ///< natural demand (the sender NIC's uplink rate)
  bool high_priority = false;
};

/// Enumerate one item's inter-host connections in drain order (ring
/// successors per channel / tree edges / pairwise mesh) — the flow set both
/// solvers place. Public so harnesses modelling per-flow goodput see exactly
/// the flows the assigner routed.
std::vector<PendingFlow> enumerate_flows(const AssignItem& item,
                                         const cluster::Cluster& cluster);

/// What one IncrementalAssigner::solve actually did, for decision-latency
/// accounting: how much of the cluster the dirty closure touched versus the
/// total, and how many flows were re-placed.
struct IncrementalSolveStats {
  std::size_t live_items = 0;      ///< communicators known to the assigner
  std::size_t solved_items = 0;    ///< communicators inside the dirty closure
  std::size_t flows_resolved = 0;  ///< flows re-placed by this solve
  std::size_t links_touched = 0;   ///< links visited by the dirty closure
  bool audited = false;            ///< this solve ran the sampled audit
  bool fell_back = false;          ///< audit found stale state; full rebuild ran
};

/// Warm-started incremental FFA/PFA.
///
/// assign_flows() above re-runs the full greedy over every live communicator
/// on every control-plane event — O(cluster), even when the event touches one
/// rack. This class keeps the greedy's state (per-link demand, every item's
/// chosen routes) alive across events and re-solves only the *dirty
/// closure*: the connected component(s) of the candidate-link interference
/// graph — items joined through any link that appears on any candidate path
/// of any of their flows — containing a changed item or link. It is the
/// policy-layer twin of the netsim's component-scoped max-min reallocation.
///
/// Identity contract: after solve(), the stored assignment is bitwise
/// identical to a from-scratch assign_flows() over the live items in
/// ascending-CommId order with the same options (the order
/// Controller::compute_routes produces). The greedy's score for a flow reads
/// only link demands on the flow's candidate paths, and candidate-disjoint
/// items place demand on disjoint links, so the full greedy factors over
/// interference components; re-running exactly the dirty components with the
/// component-local round-robin (ascending CommId, one flow per item per
/// cycle — the restriction of the global drain order) reproduces the full
/// result. tests/test_incremental_assign.cpp property-checks this over
/// randomized event streams.
///
/// Deliberately unsupported: AssignOptions::network (live-telemetry tie
/// breaking). Live link throughput changes continuously, so *every* item
/// would be dirty at every solve and warm starting could never skip work;
/// callers that want telemetry-steered scoring use the one-shot solver.
class IncrementalAssigner {
 public:
  IncrementalAssigner(const cluster::Cluster& cluster,
                      const net::Routing& routing);

  // --- policy configuration ---------------------------------------------------
  /// Route indices reserved for high-priority items (PFA). A change dirties
  /// every item (reservation shifts every score), so flip it rarely.
  void set_reserved_routes(std::unordered_set<std::uint32_t> routes);
  /// Confirmed-failed links (LinkId values). Diffed against the previous
  /// set: only items whose candidate paths cross a changed link re-solve.
  void set_failed_links(const std::unordered_set<std::uint32_t>& failed);
  /// Placement-decision instants land on this timeline when enabled (same
  /// events assign_flows emits). Null disables.
  void set_telemetry(telemetry::Telemetry* t) { telemetry_ = t; }

  // --- divergence audit --------------------------------------------------------
  /// Self-healing safety net for the warm state. Warm re-solves are proven
  /// assignment-identical to the full greedy — but only while the assigner's
  /// internal demand/route state is in sync with reality. A fault landing
  /// mid-dirty-closure, a missed change-log entry, or a memory-corrupting
  /// bug leaves the state *stale*: internally coherent, silently wrong. The
  /// audit samples solves (seeded, so a seed sweep audits different solves
  /// per seed but each run is deterministic): an audited solve re-runs the
  /// full one-shot greedy over the live items and digests both assignments.
  /// On mismatch the assigner falls back — it adopts the full result and
  /// rebuilds its warm demand state from it — so one audit hit heals every
  /// consequence of the staleness.
  struct AuditOptions {
    /// Expected solves between audits (0 disables). The audit fires when a
    /// splitmix64 hash of (seed, solve index) lands in a 1/period window,
    /// so audits are spread rather than phase-locked to the event stream.
    std::uint32_t period = 0;
    std::uint64_t seed = 0;
  };
  /// Configure the audit; counters land in `metrics` (may be null):
  /// policy_audit_runs_total / policy_audit_mismatch_total /
  /// policy_fallback_total.
  void set_audit(const AuditOptions& options,
                 telemetry::MetricsRegistry* metrics = nullptr);
  [[nodiscard]] std::uint64_t audit_runs() const { return audit_runs_; }
  [[nodiscard]] std::uint64_t audit_mismatches() const {
    return audit_mismatches_;
  }
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }

  /// Throw away all warm state (demand map, every item's routes) and mark
  /// every item dirty: the next solve() is a from-scratch re-solve that
  /// rebuilds the warm start. The recovery entry point for controller
  /// restarts that cannot replay the change log (trimmed history) and for
  /// any caller that knows the warm state is stale.
  void invalidate_all();

  /// Adopt `warm` as the stored assignment and rebuild the warm demand state
  /// (link_demand_, per-item contrib) from it. Items covered by `warm` (and
  /// items with no inter-host flows) come out clean; a live item with flows
  /// but no entry stays dirty for the next solve. The audit fallback feeds
  /// this the full greedy's output; controller restart feeds it a snapshot.
  void adopt_assignment(
      const std::unordered_map<std::uint32_t, RouteMap>& warm);

  /// Test hook: make the stored assignment stale while keeping the internal
  /// demand state self-consistent with it — exactly the failure mode the
  /// audit exists to catch (no dirt is raised, so without an audit the
  /// staleness persists silently). Reroutes every multi-path flow of the
  /// seeded victim item to the next-index route. Returns false when no item
  /// has a multi-path flow to corrupt.
  bool debug_poison_state(std::uint64_t seed);

  /// Sum of the warm per-link demand map (0 iff no item holds placed
  /// demand) — the chaos harness's orphaned-reservation check.
  [[nodiscard]] double total_link_demand() const;

  // --- event API ---------------------------------------------------------------
  /// Register a communicator (copies its GPU list and strategy; the item is
  /// dirty until the next solve). The comm id must not be live here.
  void add_item(const AssignItem& item);
  /// Drop a communicator (departure / kill). Links it loaded become dirty.
  void remove_item(CommId comm);
  /// Flip an item's PFA priority in place (pass order changes, so its whole
  /// component re-solves). No-op when the flag already matches.
  void set_high_priority(CommId comm, bool high_priority);
  /// Replace a live item's strategy (the controller's algorithm-swap path).
  /// When the change alters the compiled flow shape — algorithm, channel
  /// orders, or the pairwise-mesh flag — the item is re-registered: its old
  /// demand comes off (dirtying the links it loaded), its flow list and
  /// candidate footprint are rebuilt from the new edge list, and the item
  /// re-solves at the next solve(). Shape-neutral changes (routes, tree
  /// pipeline chunks) just refresh the stored copy. Returns whether the
  /// flow shape changed.
  bool update_strategy(CommId comm, const svc::CommStrategy& strategy);
  /// Mark a link changed (the netsim change-set feed: state transitions,
  /// capacity rescales). Items whose candidate paths cross it re-solve.
  void mark_link_dirty(LinkId link);

  [[nodiscard]] bool has_item(CommId comm) const {
    return items_.count(comm.get()) > 0;
  }
  [[nodiscard]] std::size_t item_count() const { return items_.size(); }
  [[nodiscard]] bool item_high_priority(CommId comm) const;
  /// Live communicator ids, ascending (for diffing against a registry).
  [[nodiscard]] std::vector<CommId> item_ids() const;

  // --- solve -------------------------------------------------------------------
  /// Re-solve the dirty closure (no-op when nothing is dirty). `now` stamps
  /// telemetry instants only.
  IncrementalSolveStats solve(Time now = 0.0);

  /// Current routes of one live communicator (valid after solve()).
  [[nodiscard]] const RouteMap& routes_of(CommId comm) const;
  /// Snapshot of every live communicator's routes, in assign_flows' result
  /// shape (for cross-validation against the one-shot solver).
  [[nodiscard]] std::unordered_map<std::uint32_t, RouteMap> assignments() const;

 private:
  struct ItemState {
    AppId app{};
    bool high_priority = false;
    std::vector<GpuId> gpus;
    svc::CommStrategy strategy;
    std::vector<PendingFlow> flows;             ///< enumeration order = drain order
    std::vector<std::uint32_t> candidate_links; ///< sorted unique, all paths
    RouteMap routes;
    /// (link, demand) actually added to link_demand_ by the last solve —
    /// subtracted before a re-solve and on removal.
    std::vector<std::pair<std::uint32_t, double>> contrib;
    std::uint64_t visit = 0;  ///< dirty-closure BFS epoch
  };

  void seed_links_dirty(const std::vector<std::uint32_t>& links);
  /// Expand dirty items/links to the full interference closure; returns the
  /// affected comm ids ascending and the visited-link count.
  std::vector<std::uint32_t> collect_closure(std::size_t* links_touched);
  /// Run the one-shot greedy over all live items with this assigner's
  /// options (the audit oracle).
  [[nodiscard]] std::unordered_map<std::uint32_t, RouteMap> full_resolve() const;
  /// Decide + run the sampled audit for solve index `solve_index`.
  void maybe_audit(IncrementalSolveStats& stats);

  const cluster::Cluster* cluster_;
  const net::Routing* routing_;
  std::unordered_set<std::uint32_t> reserved_routes_;
  std::unordered_set<std::uint32_t> failed_links_;
  telemetry::Telemetry* telemetry_ = nullptr;

  AuditOptions audit_;
  telemetry::MetricsRegistry* audit_metrics_ = nullptr;
  std::uint64_t solve_count_ = 0;   ///< solves that re-solved something
  std::uint64_t audit_runs_ = 0;
  std::uint64_t audit_mismatches_ = 0;
  std::uint64_t fallbacks_ = 0;

  /// Live items, ordered by comm id — the canonical greedy order.
  std::map<std::uint32_t, ItemState> items_;
  std::vector<double> link_demand_;                    ///< by LinkId
  std::vector<std::vector<std::uint32_t>> link_items_; ///< LinkId -> comm ids
  std::unordered_set<std::uint32_t> dirty_items_;
  std::vector<std::uint32_t> dirty_links_;
  std::vector<std::uint64_t> link_visit_;  ///< BFS epoch marks, by LinkId
  std::uint64_t visit_epoch_ = 0;

  // Scratch reused across solves: one dense own-demand vector per solved
  // item (zeroed lazily through its touched list), candidate score buffer,
  // and the closure worklist.
  std::vector<std::vector<double>> own_pool_;
  std::vector<std::vector<std::uint32_t>> own_touched_;
  std::vector<double> score_scratch_;
};

}  // namespace mccs::policy
