#pragma once
// Traffic scheduling QoS policy (§4.3, example #4; CASSINI-inspired).
//
// The controller pulls the prioritised application's collective trace from
// the MCCS management API, estimates its iteration period and the busy
// (communicating) interval within each period, and hands the *complement*
// of that interval to every other tenant as their permitted send window —
// interleaving the tenants' traffic in time.

#include <vector>

#include "common/units.h"
#include "mccs/trace.h"
#include "mccs/transport_engine.h"

namespace mccs::policy {

/// Periodic communication pattern extracted from a trace.
struct CommPattern {
  Time period = 0.0;      ///< iteration length
  Time busy_begin = 0.0;  ///< offset of the first communication in a period
  Time busy_end = 0.0;    ///< offset of the last communication's completion
  Time t0 = 0.0;          ///< phase reference (start of an observed period)
  [[nodiscard]] bool valid() const { return period > 0.0; }
};

/// Estimate the iteration period and busy window from trace records of one
/// application (uses rank-0 records of the largest communicator). Needs at
/// least three iterations to lock on; returns an invalid pattern otherwise.
CommPattern analyze_comm_pattern(const std::vector<svc::TraceRecord>& trace);

/// Build the schedule that confines *other* tenants to the prioritised
/// app's idle cycles. `guard` shrinks the window on both sides to absorb
/// phase jitter.
svc::TrafficSchedule idle_window_schedule(const CommPattern& pattern,
                                          Time guard = 0.0);

/// Offline-profile variant (§5: "we manually profile applications offline"):
/// given the app's iteration `period` (e.g., measured by the administrator),
/// fold every traced [issued, completed] interval of the app's collectives
/// into one period (anchored at `t0`), merge, pad by `guard`, and return the
/// complement as the permitted windows for other tenants. Handles workloads
/// whose communication is interleaved with compute within an iteration
/// (tensor parallelism) where burst inference cannot.
svc::TrafficSchedule complement_of_busy(const std::vector<svc::TraceRecord>& trace,
                                        Time period, Time t0, Time guard = 0.0);

}  // namespace mccs::policy
