#include "policy/flow_assign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "collectives/compiler.h"
#include "common/parallel.h"
#include "netsim/network.h"

namespace mccs::policy {
namespace {

/// Collect every inter-host edge of an item's strategy as a pending flow —
/// the plan compiler's emitted edge list per channel (algorithm_edges), or
/// the full mesh when the strategy routes pairwise traffic explicitly. The
/// enumeration order doubles as the per-item drain order, for both the
/// one-shot and the incremental solver.
void collect_flows(std::size_t item_index, const AssignItem& item,
                   const cluster::Cluster& cluster,
                   std::vector<PendingFlow>& out) {
  const svc::CommStrategy& s = *item.strategy;
  const auto& gpus = *item.gpus_by_rank;
  const int n = static_cast<int>(gpus.size());

  auto add_edge = [&](int channel, int src_rank, int dst_rank) {
    const GpuId a = gpus[static_cast<std::size_t>(src_rank)];
    const GpuId b = gpus[static_cast<std::size_t>(dst_rank)];
    if (cluster.same_host(a, b)) return;
    const NodeId src = cluster.nic_node_of_gpu(a);
    const NodeId dst = cluster.nic_node_of_gpu(b);
    // Demand estimate: the sender NIC's uplink capacity (the rate the
    // connection would reach unimpeded), per Hedera's natural-demand idea.
    Bandwidth demand = 0.0;
    for (LinkId l : cluster.topology().out_links(src)) {
      demand = std::max(demand, cluster.topology().link(l).capacity);
    }
    out.push_back(PendingFlow{
        item_index, svc::CommStrategy::route_key(channel, src_rank, dst_rank),
        src, dst, demand, item.high_priority});
  };

  for (int c = 0; c < s.num_channels(); ++c) {
    if (s.route_pairwise_mesh) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (i != j) add_edge(c, i, j);
        }
      }
      continue;
    }
    // The compiler's emitted edge list for this algorithm over this
    // channel's order: the exact (src, dst) superset any compiled schedule
    // of the strategy can send on (compiler.h, algorithm_edges). For kRing
    // this enumerates ring successors in position order — byte-for-byte the
    // historical loop, so ring assignments (and the fig goldens behind
    // them) are untouched.
    const coll::RingOrder& order =
        s.channel_orders[static_cast<std::size_t>(c)];
    for (auto [src_rank, dst_rank] :
         coll::algorithm_edges(s.algorithm, order)) {
      add_edge(c, src_rank, dst_rank);
    }
  }
}

/// Best-fit: the path whose most-loaded link ends up least overloaded after
/// adding this flow's demand (normalised by capacity). Two refinements keep
/// the outcome sensible under ties:
///  * colliding with a flow of the SAME job is worse than with another
///    tenant's (a job's rings are always simultaneously active, a stranger's
///    may be idle), so same-job load carries a penalty;
///  * high-priority flows slightly prefer the reserved routes they alone may
///    use (PFA dedicates those routes to them).
/// Remaining ties break to the lowest route index (deterministic).
/// Candidate routes worth a pool dispatch: each score is a short walk over a
// path's links (well under a microsecond), so the crossover sits far above
// the testbed's handful of ECMP candidates.
constexpr std::size_t kParallelRouteThreshold = 64;
/// Routes per scoring chunk (disjoint slots of the score array; any split is
/// deterministic because the argmin below is serial and tie-broken by id).
constexpr std::size_t kRouteGrain = 8;

std::uint32_t best_route(const PendingFlow& f, const net::Routing& routing,
                         const cluster::Cluster& cluster,
                         const std::vector<double>& link_demand,
                         const std::vector<double>& own_demand,
                         const std::unordered_set<std::uint32_t>& reserved,
                         bool restrict_to_unreserved,
                         const net::Network* live,
                         const std::unordered_set<std::uint32_t>& failed,
                         std::vector<double>& score_scratch,
                         double* score_out) {
  // Resolved on the calling thread: Routing's path cache fills lazily and is
  // not written under the pool.
  const auto& paths = routing.paths(f.src, f.dst);
  constexpr double kInadmissible = std::numeric_limits<double>::infinity();

  // Every candidate's fit score depends only on shared read-only state
  // (demand maps, live link throughput, the reserved/failed sets), so the
  // candidates score independently into disjoint slots; inadmissible routes
  // score +inf. First pass avoids confirmed-failed links entirely; if that
  // leaves no admissible path (e.g. a NIC's only uplink died), the second
  // pass places the flow anyway so the assignment is always total.
  auto score_route = [&](std::uint32_t r, bool avoid_failed) -> double {
    if (restrict_to_unreserved && reserved.count(r) > 0 &&
        paths.size() > reserved.size()) {
      return kInadmissible;
    }
    if (avoid_failed && !failed.empty()) {
      for (LinkId l : paths[r]) {
        if (failed.count(l.get()) > 0) return kInadmissible;
      }
    }
    double score = 0.0;
    for (LinkId l : paths[r]) {
      const double cap = cluster.topology().link(l).capacity;
      double load = link_demand[l.get()] + 0.5 * own_demand[l.get()];
      // Live telemetry (O(1) per-link index lookup): traffic the demand
      // model can't see — background flows, other tenants' libraries.
      if (live != nullptr) load += live->link_throughput(l);
      score = std::max(score, (load + f.demand) / cap);
    }
    if (!restrict_to_unreserved && f.high_priority && reserved.count(r) > 0) {
      score -= 1e-6;  // prefer the dedicated route on ties
    }
    return score;
  };

  for (const bool avoid_failed : {true, false}) {
    score_scratch.assign(paths.size(), kInadmissible);
    par::parallel_for(
        paths.size(),
        paths.size() >= kParallelRouteThreshold ? kRouteGrain : paths.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t r = begin; r < end; ++r) {
            score_scratch[r] =
                score_route(static_cast<std::uint32_t>(r), avoid_failed);
          }
        });
    // Deterministic argmin, ties broken to the lowest route id — identical
    // to the sequential first-strictly-smaller scan for any worker split.
    double best_score = kInadmissible;
    std::uint32_t best = 0;
    for (std::uint32_t r = 0; r < paths.size(); ++r) {
      if (score_scratch[r] < best_score) {
        best_score = score_scratch[r];
        best = r;
      }
    }
    if (std::isfinite(best_score)) {
      if (score_out != nullptr) *score_out = best_score;
      return best;
    }
    MCCS_CHECK(avoid_failed, "no admissible route for flow");
  }
  MCCS_CHECK(false, "unreachable");
  return 0;
}

/// splitmix64 finalizer — the audit sampler's hash (stable across platforms,
/// matching the FaultPlan generator's idiom).
std::uint64_t mix_u64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void fold_digest(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 1099511628211ull;  // FNV prime
  }
}

std::uint64_t assignment_digest(
    const std::unordered_map<std::uint32_t, RouteMap>& assignment) {
  std::uint64_t h = kFnvOffset;
  std::vector<std::uint32_t> ids;
  ids.reserve(assignment.size());
  for (const auto& [id, routes] : assignment) {
    if (!routes.empty()) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<std::uint64_t> keys;
  for (std::uint32_t id : ids) {
    fold_digest(h, id);
    const RouteMap& routes = assignment.at(id);
    keys.clear();
    keys.reserve(routes.size());
    for (const auto& [key, route] : routes) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t key : keys) {
      fold_digest(h, key);
      fold_digest(h, routes.at(key).get());
    }
  }
  return h;
}

std::vector<PendingFlow> enumerate_flows(const AssignItem& item,
                                         const cluster::Cluster& cluster) {
  MCCS_EXPECTS(item.gpus_by_rank != nullptr && item.strategy != nullptr);
  std::vector<PendingFlow> out;
  collect_flows(0, item, cluster, out);
  return out;
}

std::unordered_map<std::uint32_t, RouteMap> assign_flows(
    const std::vector<AssignItem>& items, const cluster::Cluster& cluster,
    const net::Routing& routing, const AssignOptions& options) {
  // Per-item flow queues, drained round-robin across items for fairness.
  // Items enumerate their strategy edges independently (pure reads of the
  // cluster and strategy, writes only to their own queue), so independent
  // AssignItems batch across the pool; the drain below stays serial, so the
  // assignment outcome is identical for any thread count.
  std::vector<std::vector<PendingFlow>> queues(items.size());
  std::vector<std::size_t> heads(items.size(), 0);
  for (const AssignItem& item : items) {
    MCCS_EXPECTS(item.gpus_by_rank != nullptr && item.strategy != nullptr);
  }
  // One chunk per item only when the batch is wide enough to pay for the
  // dispatch; a one- or two-communicator assign enumerates inline.
  par::parallel_for(items.size(), items.size() >= 4 ? 1 : items.size(),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        collect_flows(i, items[i], cluster, queues[i]);
                      }
                    });

  std::vector<double> link_demand(cluster.topology().link_count(), 0.0);
  // Per-item load, for the same-job collision penalty.
  std::vector<std::vector<double>> item_demand(
      items.size(), std::vector<double>(cluster.topology().link_count(), 0.0));
  std::vector<double> score_scratch;  // candidate scores, reused per flow
  std::unordered_map<std::uint32_t, RouteMap> result;

  const bool record =
      options.telemetry != nullptr && options.telemetry->enabled();
  const int assign_track =
      record ? options.telemetry->timeline().track("policy", "assign") : -1;

  // High-priority flows are fitted first (they may use any route, and prefer
  // the reserved ones); then the rest, restricted to non-reserved routes.
  for (const bool priority_pass : {true, false}) {
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].high_priority != priority_pass) continue;
        if (heads[i] >= queues[i].size()) continue;
        any = true;
        const PendingFlow& f = queues[i][heads[i]++];
        double score = 0.0;
        const std::uint32_t r = best_route(
            f, routing, cluster, link_demand, item_demand[i],
            options.reserved_routes, /*restrict_to_unreserved=*/!f.high_priority,
            options.network, options.failed_links, score_scratch, &score);
        for (LinkId l : routing.paths(f.src, f.dst)[r]) {
          link_demand[l.get()] += f.demand;
          item_demand[i][l.get()] += f.demand;
        }
        result[items[i].comm.get()][f.route_key] = RouteId{r};
        if (record) {
          // One instant per placement decision: which route won the best-fit
          // search and how loaded its bottleneck would be (the fit score).
          telemetry::Timeline& tl = options.telemetry->timeline();
          tl.instant(assign_track, "policy",
                     f.high_priority ? "pfa_assign" : "ffa_assign", options.now,
                     {{"comm", static_cast<std::int64_t>(items[i].comm.get())},
                      {"app", static_cast<std::int64_t>(items[i].app.get())},
                      {"route", static_cast<std::int64_t>(r)},
                      {"fit_score", score},
                      {"high_priority", f.high_priority}});
        }
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// IncrementalAssigner
// ---------------------------------------------------------------------------

IncrementalAssigner::IncrementalAssigner(const cluster::Cluster& cluster,
                                         const net::Routing& routing)
    : cluster_(&cluster),
      routing_(&routing),
      link_demand_(cluster.topology().link_count(), 0.0),
      link_items_(cluster.topology().link_count()),
      link_visit_(cluster.topology().link_count(), 0) {}

void IncrementalAssigner::set_reserved_routes(
    std::unordered_set<std::uint32_t> routes) {
  if (routes == reserved_routes_) return;
  reserved_routes_ = std::move(routes);
  // Reservation is keyed by route index, so it shifts scores everywhere.
  for (const auto& [id, st] : items_) dirty_items_.insert(id);
}

void IncrementalAssigner::set_failed_links(
    const std::unordered_set<std::uint32_t>& failed) {
  if (failed == failed_links_) return;
  for (std::uint32_t l : failed) {
    if (failed_links_.count(l) == 0 && l < link_visit_.size()) {
      dirty_links_.push_back(l);
    }
  }
  for (std::uint32_t l : failed_links_) {
    if (failed.count(l) == 0 && l < link_visit_.size()) {
      dirty_links_.push_back(l);
    }
  }
  failed_links_ = failed;
}

void IncrementalAssigner::add_item(const AssignItem& item) {
  MCCS_EXPECTS(item.gpus_by_rank != nullptr && item.strategy != nullptr);
  MCCS_EXPECTS(items_.count(item.comm.get()) == 0);
  ItemState& st = items_[item.comm.get()];
  st.app = item.app;
  st.high_priority = item.high_priority;
  st.gpus = *item.gpus_by_rank;
  st.strategy = *item.strategy;

  AssignItem owned = item;
  owned.gpus_by_rank = &st.gpus;
  owned.strategy = &st.strategy;
  collect_flows(0, owned, *cluster_, st.flows);

  // Candidate links = every link on every equal-cost path of every flow.
  // This is the interference footprint: another item can affect this one's
  // scores only through demand on one of these links.
  for (const PendingFlow& f : st.flows) {
    for (const auto& path : routing_->paths(f.src, f.dst)) {
      for (LinkId l : path) st.candidate_links.push_back(l.get());
    }
  }
  std::sort(st.candidate_links.begin(), st.candidate_links.end());
  st.candidate_links.erase(
      std::unique(st.candidate_links.begin(), st.candidate_links.end()),
      st.candidate_links.end());
  for (std::uint32_t l : st.candidate_links) {
    auto& owners = link_items_[l];
    owners.insert(std::lower_bound(owners.begin(), owners.end(),
                                   item.comm.get()),
                  item.comm.get());
  }
  dirty_items_.insert(item.comm.get());
}

void IncrementalAssigner::remove_item(CommId comm) {
  auto it = items_.find(comm.get());
  MCCS_EXPECTS(it != items_.end());
  ItemState& st = it->second;
  // The departed item influenced others only through demand it actually
  // placed, so its contribution links (not its full candidate set) seed the
  // dirty closure.
  for (const auto& [link, demand] : st.contrib) {
    link_demand_[link] -= demand;
    dirty_links_.push_back(link);
  }
  for (std::uint32_t l : st.candidate_links) {
    auto& owners = link_items_[l];
    owners.erase(std::lower_bound(owners.begin(), owners.end(), comm.get()));
  }
  dirty_items_.erase(comm.get());
  items_.erase(it);
}

void IncrementalAssigner::set_high_priority(CommId comm, bool high_priority) {
  auto it = items_.find(comm.get());
  MCCS_EXPECTS(it != items_.end());
  ItemState& st = it->second;
  if (st.high_priority == high_priority) return;
  st.high_priority = high_priority;
  for (PendingFlow& f : st.flows) f.high_priority = high_priority;
  dirty_items_.insert(comm.get());
}

bool IncrementalAssigner::update_strategy(CommId comm,
                                          const svc::CommStrategy& strategy) {
  auto it = items_.find(comm.get());
  MCCS_EXPECTS(it != items_.end());
  ItemState& st = it->second;

  auto orders_equal = [&] {
    if (st.strategy.channel_orders.size() != strategy.channel_orders.size()) {
      return false;
    }
    for (std::size_t i = 0; i < strategy.channel_orders.size(); ++i) {
      if (!(st.strategy.channel_orders[i] == strategy.channel_orders[i])) {
        return false;
      }
    }
    return true;
  };
  // Flows depend on the algorithm's edge list per channel order and the
  // mesh-routing flag — not on explicit routes or tree pipeline depth.
  const bool same_shape =
      st.strategy.algorithm == strategy.algorithm &&
      st.strategy.route_pairwise_mesh == strategy.route_pairwise_mesh &&
      orders_equal();
  if (same_shape) {
    st.strategy = strategy;
    return false;
  }

  // Re-register: removal subtracts the old demand and dirties the links it
  // loaded; re-adding rebuilds the flow list and candidate footprint from
  // the new edge list and marks the item dirty.
  const AppId app = st.app;
  const bool high_priority = st.high_priority;
  const std::vector<GpuId> gpus = std::move(st.gpus);
  remove_item(comm);
  AssignItem fresh;
  fresh.comm = comm;
  fresh.app = app;
  fresh.gpus_by_rank = &gpus;
  fresh.strategy = &strategy;
  fresh.high_priority = high_priority;
  add_item(fresh);
  return true;
}

void IncrementalAssigner::mark_link_dirty(LinkId link) {
  MCCS_EXPECTS(link.get() < link_visit_.size());
  dirty_links_.push_back(link.get());
}

bool IncrementalAssigner::item_high_priority(CommId comm) const {
  auto it = items_.find(comm.get());
  MCCS_EXPECTS(it != items_.end());
  return it->second.high_priority;
}

std::vector<CommId> IncrementalAssigner::item_ids() const {
  std::vector<CommId> out;
  out.reserve(items_.size());
  for (const auto& [id, st] : items_) out.push_back(CommId{id});
  return out;
}

std::vector<std::uint32_t> IncrementalAssigner::collect_closure(
    std::size_t* links_touched) {
  const std::uint64_t epoch = ++visit_epoch_;
  std::vector<std::uint32_t> worklist;
  std::vector<std::uint32_t> closure;

  auto visit_item = [&](std::uint32_t id) {
    auto it = items_.find(id);
    if (it == items_.end() || it->second.visit == epoch) return;
    it->second.visit = epoch;
    closure.push_back(id);
    worklist.push_back(id);
  };
  auto visit_link = [&](std::uint32_t l) {
    if (link_visit_[l] == epoch) return;
    link_visit_[l] = epoch;
    ++*links_touched;
    for (std::uint32_t id : link_items_[l]) visit_item(id);
  };

  for (std::uint32_t l : dirty_links_) visit_link(l);
  for (std::uint32_t id : dirty_items_) visit_item(id);
  // Expand to the full interference component(s): any item sharing a
  // candidate link with a closure item joins the closure.
  while (!worklist.empty()) {
    const std::uint32_t id = worklist.back();
    worklist.pop_back();
    for (std::uint32_t l : items_.at(id).candidate_links) visit_link(l);
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

IncrementalSolveStats IncrementalAssigner::solve(Time now) {
  IncrementalSolveStats stats;
  stats.live_items = items_.size();
  if (dirty_items_.empty() && dirty_links_.empty()) return stats;

  const std::vector<std::uint32_t> closure =
      collect_closure(&stats.links_touched);
  dirty_items_.clear();
  dirty_links_.clear();
  stats.solved_items = closure.size();
  if (closure.empty()) {
    // Dirt that touched no live item (e.g. a change-log entry for a link no
    // tenant crosses) still counts as a solve for audit sampling: staleness
    // can only be healed by a solve, so every non-trivial solve is a
    // candidate.
    ++solve_count_;
    maybe_audit(stats);
    return stats;
  }

  // Roll the closure's previous placements out of the global demand map;
  // everything outside the closure is in a different interference component,
  // so its demand cannot sit on any link the re-solve will score.
  for (std::uint32_t id : closure) {
    ItemState& st = items_.at(id);
    for (const auto& [link, demand] : st.contrib) link_demand_[link] -= demand;
    st.contrib.clear();
    st.routes.clear();
  }

  // Per-item own-demand scratch (dense, lazily zeroed via touched lists).
  const std::size_t link_count = link_demand_.size();
  while (own_pool_.size() < closure.size()) {
    own_pool_.emplace_back(link_count, 0.0);
    own_touched_.emplace_back();
  }
  for (std::size_t i = 0; i < closure.size(); ++i) {
    for (std::uint32_t l : own_touched_[i]) own_pool_[i][l] = 0.0;
    own_touched_[i].clear();
  }

  const bool record = telemetry_ != nullptr && telemetry_->enabled();
  const int assign_track =
      record ? telemetry_->timeline().track("policy", "assign") : -1;

  // The greedy, restricted to the closure: same two priority passes and the
  // same ascending-comm-id round-robin as assign_flows. Because the closure
  // is component-closed, this is exactly the full drain order with the
  // untouched components' turns deleted — and their turns never read or
  // wrote any link the closure scores, so the placements coincide.
  std::vector<std::size_t> heads(closure.size(), 0);
  for (const bool priority_pass : {true, false}) {
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t i = 0; i < closure.size(); ++i) {
        ItemState& st = items_.at(closure[i]);
        if (st.high_priority != priority_pass) continue;
        if (heads[i] >= st.flows.size()) continue;
        any = true;
        const PendingFlow& f = st.flows[heads[i]++];
        double score = 0.0;
        const std::uint32_t r = best_route(
            f, *routing_, *cluster_, link_demand_, own_pool_[i],
            reserved_routes_, /*restrict_to_unreserved=*/!f.high_priority,
            /*live=*/nullptr, failed_links_, score_scratch_, &score);
        for (LinkId l : routing_->paths(f.src, f.dst)[r]) {
          link_demand_[l.get()] += f.demand;
          own_pool_[i][l.get()] += f.demand;
          own_touched_[i].push_back(l.get());
          st.contrib.emplace_back(l.get(), f.demand);
        }
        st.routes[f.route_key] = RouteId{r};
        ++stats.flows_resolved;
        if (record) {
          telemetry::Timeline& tl = telemetry_->timeline();
          tl.instant(assign_track, "policy",
                     f.high_priority ? "pfa_assign" : "ffa_assign", now,
                     {{"comm", static_cast<std::int64_t>(closure[i])},
                      {"app", static_cast<std::int64_t>(st.app.get())},
                      {"route", static_cast<std::int64_t>(r)},
                      {"fit_score", score},
                      {"high_priority", f.high_priority}});
        }
      }
    }
  }
  ++solve_count_;
  maybe_audit(stats);
  return stats;
}

void IncrementalAssigner::set_audit(const AuditOptions& options,
                                    telemetry::MetricsRegistry* metrics) {
  audit_ = options;
  audit_metrics_ = metrics;
}

std::unordered_map<std::uint32_t, RouteMap> IncrementalAssigner::full_resolve()
    const {
  std::vector<AssignItem> batch;
  batch.reserve(items_.size());
  for (const auto& [id, st] : items_) {
    AssignItem item;
    item.comm = CommId{id};
    item.app = st.app;
    item.gpus_by_rank = &st.gpus;
    item.strategy = &st.strategy;
    item.high_priority = st.high_priority;
    batch.push_back(item);
  }
  AssignOptions options;
  options.reserved_routes = reserved_routes_;
  options.failed_links = failed_links_;
  return assign_flows(batch, *cluster_, *routing_, options);
}

void IncrementalAssigner::adopt_assignment(
    const std::unordered_map<std::uint32_t, RouteMap>& warm) {
  std::fill(link_demand_.begin(), link_demand_.end(), 0.0);
  dirty_items_.clear();
  dirty_links_.clear();
  for (auto& [id, st] : items_) {
    st.contrib.clear();
    auto it = warm.find(id);
    if (it == warm.end() && !st.flows.empty()) {
      // Live item the adopted assignment knows nothing about (e.g. created
      // against a snapshot taken before it arrived): solve it next round.
      st.routes.clear();
      dirty_items_.insert(id);
      continue;
    }
    st.routes = it != warm.end() ? it->second : RouteMap{};
    for (const PendingFlow& f : st.flows) {
      auto rit = st.routes.find(f.route_key);
      if (rit == st.routes.end()) continue;
      for (LinkId l : routing_->paths(f.src, f.dst)[rit->second.get()]) {
        link_demand_[l.get()] += f.demand;
        st.contrib.emplace_back(l.get(), f.demand);
      }
    }
  }
}

void IncrementalAssigner::maybe_audit(IncrementalSolveStats& stats) {
  if (audit_.period == 0) return;
  const std::uint64_t h =
      mix_u64(audit_.seed ^ (solve_count_ * 0x9e3779b97f4a7c15ull));
  if (h % audit_.period != 0) return;
  stats.audited = true;
  ++audit_runs_;
  if (audit_metrics_ != nullptr) {
    audit_metrics_->counter("policy_audit_runs_total").increment();
  }
  const auto full = full_resolve();
  if (assignment_digest(full) == assignment_digest(assignments())) return;
  ++audit_mismatches_;
  ++fallbacks_;
  if (audit_metrics_ != nullptr) {
    audit_metrics_->counter("policy_audit_mismatch_total").increment();
    audit_metrics_->counter("policy_fallback_total").increment();
  }
  adopt_assignment(full);
  stats.fell_back = true;
}

void IncrementalAssigner::invalidate_all() {
  std::fill(link_demand_.begin(), link_demand_.end(), 0.0);
  dirty_links_.clear();
  dirty_items_.clear();
  for (auto& [id, st] : items_) {
    st.contrib.clear();
    st.routes.clear();
    dirty_items_.insert(id);
  }
  ++fallbacks_;
  if (audit_metrics_ != nullptr) {
    audit_metrics_->counter("policy_fallback_total").increment();
  }
}

bool IncrementalAssigner::debug_poison_state(std::uint64_t seed) {
  std::vector<std::uint32_t> candidates;
  for (const auto& [id, st] : items_) {
    if (st.routes.empty()) continue;  // unsolved items have nothing to skew
    for (const PendingFlow& f : st.flows) {
      if (routing_->paths(f.src, f.dst).size() > 1) {
        candidates.push_back(id);
        break;
      }
    }
  }
  if (candidates.empty()) return false;
  const std::uint32_t victim_id =
      candidates[mix_u64(seed ^ 0x9e3779b97f4a7c15ull) % candidates.size()];
  ItemState& st = items_.at(victim_id);
  // Re-place every multi-path flow on the next-index route, keeping the
  // demand map and contrib list consistent with the (now wrong) routes: the
  // state stays internally coherent, so nothing short of an audit or a cold
  // rebuild will ever notice.
  for (const auto& [link, demand] : st.contrib) link_demand_[link] -= demand;
  st.contrib.clear();
  for (const PendingFlow& f : st.flows) {
    const auto& paths = routing_->paths(f.src, f.dst);
    auto rit = st.routes.find(f.route_key);
    if (rit == st.routes.end()) continue;
    const std::uint32_t r = static_cast<std::uint32_t>(
        (rit->second.get() + 1) % static_cast<std::uint32_t>(paths.size()));
    rit->second = RouteId{r};
    for (LinkId l : paths[r]) {
      link_demand_[l.get()] += f.demand;
      st.contrib.emplace_back(l.get(), f.demand);
    }
  }
  return true;
}

double IncrementalAssigner::total_link_demand() const {
  double total = 0.0;
  for (double d : link_demand_) total += d;
  return total;
}

const RouteMap& IncrementalAssigner::routes_of(CommId comm) const {
  auto it = items_.find(comm.get());
  MCCS_EXPECTS(it != items_.end());
  return it->second.routes;
}

std::unordered_map<std::uint32_t, RouteMap> IncrementalAssigner::assignments()
    const {
  std::unordered_map<std::uint32_t, RouteMap> out;
  out.reserve(items_.size());
  for (const auto& [id, st] : items_) out[id] = st.routes;
  return out;
}

double measure_assign_seconds(const std::vector<AssignItem>& items,
                              const cluster::Cluster& cluster,
                              const net::Routing& routing) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = assign_flows(items, cluster, routing);
  const auto t1 = std::chrono::steady_clock::now();
  // Keep the result alive past the clock read.
  volatile std::size_t sink = result.size();
  (void)sink;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace mccs::policy
