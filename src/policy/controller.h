#pragma once
// The external controller of §4.3: a centralized manager that consumes the
// MCCS management API (communicator placements, strategies, traces) and
// drives policy — ring configuration at communicator creation, flow
// (re)assignment whenever a job joins or exits, priority flow assignment,
// and time-window traffic scheduling.

#include <memory>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "collectives/compiler.h"
#include "mccs/fabric.h"
#include "policy/flow_assign.h"
#include "policy/ring_config.h"
#include "policy/traffic_schedule.h"

namespace mccs::policy {

class Controller {
 public:
  enum class RingPolicy {
    kUserOrder,      ///< NCCL behaviour: ring follows user rank order
    kLocalityAware,  ///< example #1: group by host/rack/pod
  };
  enum class FlowPolicy {
    kEcmp,  ///< no explicit routes (the cloud default)
    kFfa,   ///< example #2: best-fit fair flow assignment
    kPfa,   ///< example #3: FFA with routes reserved for priority apps
  };

  explicit Controller(svc::Fabric& fabric) : fabric_(&fabric) {}
  /// Releases the link-change consumer so a dead controller never pins the
  /// network's change log. NOTE: the destructor does NOT detach the strategy
  /// provider / stall handler (the fabric holds std::functions bound to
  /// this); a restart must attach the successor before creating any
  /// communicator.
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  void set_ring_policy(RingPolicy p) { ring_policy_ = p; }
  void set_flow_policy(FlowPolicy p) { flow_policy_ = p; }

  /// Route the pairwise mesh too (AllToAll-heavy tenants, e.g. MoE).
  void set_route_pairwise_mesh(bool v) { route_mesh_ = v; }

  /// Warm-started incremental flow assignment: keep an IncrementalAssigner
  /// alive across control-plane events and re-solve only the dirty closure
  /// (tenants and links touched by the event) instead of running the full
  /// FFA/PFA greedy each time. Assignment-identical to the full re-solve
  /// (see flow_assign.h); off by default so existing harnesses and goldens
  /// keep the one-shot solver. Flow-generating strategy changes (an
  /// algorithm swap rewrites the compiled edge list) are synced into the
  /// warm state via IncrementalAssigner::update_strategy on every route
  /// computation, so swaps and route-only reconfigurations both stay
  /// assignment-identical to the one-shot solver.
  void set_incremental(bool v) { incremental_ = v; }
  [[nodiscard]] bool incremental() const { return incremental_; }

  /// Closure statistics of the last incremental re-solve (zeros when the
  /// incremental path has not run).
  [[nodiscard]] const IncrementalSolveStats& last_solve_stats() const {
    return last_solve_stats_;
  }

  /// PFA configuration: which apps are prioritised and which route indices
  /// are reserved for them.
  void set_high_priority(AppId app) { priority_apps_.insert(app.get()); }
  void clear_high_priority(AppId app) { priority_apps_.erase(app.get()); }
  void set_reserved_routes(std::unordered_set<std::uint32_t> routes) {
    reserved_routes_ = std::move(routes);
  }

  /// Register as the fabric's strategy provider. From then on every new
  /// communicator gets its initial strategy from this controller, and — when
  /// a flow policy is active — existing communicators are rebalanced (via
  /// runtime reconfiguration) as jobs join.
  void attach();

  /// Recompute flow assignment for all live communicators and reconfigure
  /// those whose routes changed. Called automatically on job arrival when
  /// attached; call manually after a job exits.
  void rebalance();

  // --- algorithm choice -----------------------------------------------------------

  /// Swap a live communicator's collective algorithm mid-job, through the
  /// Fig.-4 barrier: flow assignment re-runs with the new algorithm's
  /// compiled edge list (the swapped communicator's flows move to the new
  /// edges; neighbours whose placement that disturbs reconfigure too), then
  /// the new strategy installs via runtime reconfiguration — in-flight
  /// collectives drain on the old plan, held launches replay on the new
  /// one, and the algorithm-keyed plan cache compiles the new schedules.
  /// `tree_pipeline_chunks` of 0 keeps the communicator's current setting.
  /// Returns false (no-op) when nothing would change.
  bool swap_algorithm(CommId comm, coll::Algorithm algorithm,
                      std::size_t tree_pipeline_chunks = 0);

  /// Automatic algorithm choice at communicator creation: when set to a
  /// nonzero typical AllReduce payload, provide() runs the compiler's
  /// analytic selection (choose_algorithm) for that size over this fabric's
  /// cost parameters and installs the winner instead of defaulting to ring.
  /// Off (0) by default — existing harnesses and the paper-figure goldens
  /// rely on the ring default.
  void set_auto_algorithm(Bytes typical_message_bytes) {
    auto_algorithm_bytes_ = typical_message_bytes;
  }

  /// The alpha-beta cost parameters the selection pass uses on this fabric:
  /// alpha from the service's per-step latency constants, beta from the
  /// NIC uplink rate of the cluster's first GPU.
  [[nodiscard]] coll::CostParams cost_params() const;

  /// Time-window QoS (example #4): pull `prio`'s trace from the management
  /// API, find its idle cycles, and confine every app in `others` to them.
  /// Returns false when the trace is too short to analyse.
  bool apply_time_schedule(AppId prio, const std::vector<AppId>& others,
                           Time guard = 0.0);

  /// Offline-profile TS variant: the administrator supplies the prioritised
  /// app's iteration period (and phase anchor); the busy set is folded from
  /// the app's trace (policy::complement_of_busy). Returns false if the
  /// resulting schedule would leave the others no usable window.
  bool apply_profiled_schedule(AppId prio, const std::vector<AppId>& others,
                               Time period, Time t0, Time guard = 0.0);

  void clear_time_schedule(const std::vector<AppId>& apps);

  /// The ring strategy this controller would pick for a communicator (no
  /// flow assignment applied).
  [[nodiscard]] svc::CommStrategy ring_strategy(const svc::CommInfo& info) const;

  // --- fault recovery -------------------------------------------------------------

  /// One failure-triggered reconfiguration, for tests and benchmarks.
  struct RecoveryRecord {
    Time detected = 0.0;      ///< stall report confirmed against a dead link
    Time reconfigured = 0.0;  ///< reconfigure commands issued to all ranks
    LinkId link{};            ///< the newly confirmed-failed link
    int comms_reconfigured = 0;
  };

  /// Register as the fabric's transport-stall sink: escalations whose path
  /// crosses a link the network reports down mark that link failed and
  /// trigger a reconfiguration of every affected communicator over the
  /// surviving capacity (through the Fig.-4 barrier). Idempotent per link.
  void enable_fault_recovery();

  /// Manual failure management (operator / test hooks). Marking also
  /// triggers the same reconfiguration pass as an escalation would.
  void mark_link_failed(LinkId link);
  void clear_link_failed(LinkId link);

  [[nodiscard]] std::vector<LinkId> failed_links() const;

  // --- crash / restart recovery ---------------------------------------------------

  /// Everything a restarted controller needs to resume WITHOUT a full
  /// re-solve: its placement decisions (the warm assignment), the dynamic
  /// failure state it had discovered, and the change-log cursor marking the
  /// last netsim event it had consumed. Static configuration (policies,
  /// priority apps, reserved routes) is deliberately excluded — the operator
  /// re-applies it on restart, exactly as a real deployment redeploys config.
  struct ControllerSnapshot {
    std::size_t link_change_cursor = 0;  ///< first log index NOT yet consumed
    std::unordered_set<std::uint32_t> failed_links;
    std::unordered_map<std::uint32_t, RouteMap> assignments;
  };
  /// Capture the current decision state (cheap; safe at any quiesce point).
  [[nodiscard]] ControllerSnapshot snapshot() const;

  enum class RestoreOutcome {
    kWarmReplay,   ///< log replay from the cursor covered the outage
    kColdRebuild,  ///< history trimmed past the cursor: full re-solve forced
  };
  /// Resume from `snap` on this (freshly constructed, incremental-mode)
  /// controller. Registers a change-log consumer AT the snapshot cursor so
  /// every link event that fired during the outage replays into the dirty
  /// closure; adopts the snapshot assignment as the warm state; then
  /// rebalances (comms whose routes moved during the outage reconfigure).
  /// When the network trimmed the log past the cursor, restore REFUSES to
  /// gap silently: it counts controller_cold_rebuild_total in the fabric's
  /// metrics, discards the warm assignment, and re-solves everything from
  /// scratch. Either way the post-restore assignment is correct; the outcome
  /// only tells how much work it cost.
  RestoreOutcome restore(const ControllerSnapshot& snap);

  /// The warm assigner (incremental mode only; constructed on first use).
  /// Tests and the chaos harness reach through it for audit configuration
  /// and state poisoning.
  [[nodiscard]] IncrementalAssigner& warm_assigner();
  [[nodiscard]] const std::vector<RecoveryRecord>& recovery_log() const {
    return recovery_log_;
  }
  [[nodiscard]] std::uint64_t stall_reports() const { return stall_reports_; }

 private:
  svc::CommStrategy provide(const svc::CommInfo& info);

  void on_stall(const svc::StallReport& report);
  /// TS policy-decision instant on the fabric's timeline (no-op if disabled).
  void emit_ts_instant(const char* name, AppId prio,
                       const std::vector<AppId>& others,
                       const svc::TrafficSchedule& schedule);
  /// Re-route all live communicators around failed_links_; reconfigures the
  /// ones whose routes changed (always including `must_move` if valid).
  int reconfigure_around_failures(AppId must_move);

  /// Flow placement for all known comms; returns per-comm route maps.
  /// `extra` names either a communicator not yet registered (arrival) or a
  /// live one whose strategy is being replaced (algorithm swap) — in the
  /// latter case `extra_strategy` overrides the fabric's current strategy,
  /// which still reads pre-barrier.
  std::unordered_map<std::uint32_t, RouteMap> compute_routes(
      const svc::CommInfo* extra, const svc::CommStrategy* extra_strategy,
      std::unordered_map<std::uint32_t, std::vector<GpuId>>& gpu_storage,
      std::unordered_map<std::uint32_t, svc::CommStrategy>& strategy_storage);

  /// The incremental variant of compute_routes: sync the warm assigner with
  /// the fabric's live communicator set, feed it the network's link
  /// change-set and this controller's failed/reserved/priority state, then
  /// solve the dirty closure only.
  std::unordered_map<std::uint32_t, RouteMap> compute_routes_incremental(
      const svc::CommInfo* extra, const svc::CommStrategy* extra_strategy,
      std::unordered_map<std::uint32_t, std::vector<GpuId>>& gpu_storage,
      std::unordered_map<std::uint32_t, svc::CommStrategy>& strategy_storage);

  svc::Fabric* fabric_;
  RingPolicy ring_policy_ = RingPolicy::kLocalityAware;
  FlowPolicy flow_policy_ = FlowPolicy::kFfa;
  bool route_mesh_ = false;
  std::unordered_set<std::uint32_t> priority_apps_;
  std::unordered_set<std::uint32_t> reserved_routes_;
  std::unordered_set<std::uint32_t> failed_links_;
  std::vector<RecoveryRecord> recovery_log_;
  std::uint64_t stall_reports_ = 0;

  Bytes auto_algorithm_bytes_ = 0;
  bool incremental_ = false;
  std::unique_ptr<IncrementalAssigner> assigner_;  ///< lazily built
  /// Registered link-change consumer (lazily, with the assigner). Acking
  /// what we consumed lets the network trim the change log behind us.
  int link_change_consumer_ = -1;
  IncrementalSolveStats last_solve_stats_;
};

}  // namespace mccs::policy
