#include "policy/controller.h"

#include <algorithm>
#include <string>

namespace mccs::policy {
namespace {

/// The controller's timeline track ("policy" process), or -1 when the
/// fabric's timeline is disabled.
int controller_track(svc::Fabric& fabric) {
  if (!fabric.telemetry().enabled()) return -1;
  return fabric.telemetry().timeline().track("policy", "controller");
}

}  // namespace

Controller::~Controller() {
  if (link_change_consumer_ >= 0) {
    fabric_->network().unregister_link_change_consumer(link_change_consumer_);
  }
}

IncrementalAssigner& Controller::warm_assigner() {
  MCCS_EXPECTS(incremental_);
  if (assigner_ == nullptr) {
    assigner_ = std::make_unique<IncrementalAssigner>(
        fabric_->cluster(), fabric_->network().routing());
  }
  return *assigner_;
}

Controller::ControllerSnapshot Controller::snapshot() const {
  ControllerSnapshot snap;
  net::Network& network = fabric_->network();
  snap.link_change_cursor =
      link_change_consumer_ >= 0
          ? network.link_change_cursor(link_change_consumer_)
          : network.link_change_end();
  snap.failed_links = failed_links_;
  if (assigner_ != nullptr) snap.assignments = assigner_->assignments();
  return snap;
}

Controller::RestoreOutcome Controller::restore(const ControllerSnapshot& snap) {
  MCCS_EXPECTS(incremental_);
  MCCS_EXPECTS(link_change_consumer_ < 0);  // a fresh controller restores
  failed_links_ = snap.failed_links;
  net::Network& network = fabric_->network();
  IncrementalAssigner& assigner = warm_assigner();

  // Re-register WHERE the dead controller stopped reading, so every link
  // event that fired during the outage replays into the next solve's dirty
  // closure. The network refuses the registration when it has trimmed the
  // log past the cursor — a silent gap here would mean silently stale
  // routes, the exact failure the audit subsystem exists to catch late.
  const net::Network::LinkChangeRegistration reg =
      network.register_link_change_consumer_at(snap.link_change_cursor);
  RestoreOutcome outcome;
  if (reg.ok()) {
    link_change_consumer_ = reg.consumer;
    outcome = RestoreOutcome::kWarmReplay;
  } else {
    // Trimmed history: the events in [cursor, earliest) are unrecoverable,
    // so the snapshot's warm assignment cannot be trusted. Rebuild cold —
    // loudly — from the current fabric state.
    fabric_->telemetry()
        .metrics()
        .counter("controller_cold_rebuild_total")
        .increment();
    link_change_consumer_ = network.register_link_change_consumer();
    outcome = RestoreOutcome::kColdRebuild;
  }

  // Seed the assigner with the live communicator set, then either adopt the
  // snapshot's decisions (warm) or leave everything dirty (cold). rebalance()
  // runs the replayed/dirty solve and pushes any changed routes out.
  for (const svc::CommInfo& info : fabric_->list_communicators()) {
    if (assigner.has_item(info.id)) continue;
    const svc::CommStrategy strategy = fabric_->strategy_of(info.id);
    AssignItem item;
    item.comm = info.id;
    item.app = info.app;
    item.gpus_by_rank = &info.gpus;  // add_item copies both
    item.strategy = &strategy;
    item.high_priority = priority_apps_.count(info.app.get()) > 0;
    assigner.add_item(item);
  }
  if (outcome == RestoreOutcome::kWarmReplay) {
    assigner.adopt_assignment(snap.assignments);
  }
  rebalance();
  return outcome;
}

void Controller::attach() {
  fabric_->set_strategy_provider(
      [this](const svc::CommInfo& info) { return provide(info); });
}

svc::CommStrategy Controller::ring_strategy(const svc::CommInfo& info) const {
  svc::CommStrategy s =
      ring_policy_ == RingPolicy::kLocalityAware
          ? locality_aware_strategy(info.gpus, fabric_->cluster())
          : svc::nccl_default_strategy(info.gpus, fabric_->cluster());
  s.route_pairwise_mesh = route_mesh_;
  return s;
}

std::unordered_map<std::uint32_t, RouteMap> Controller::compute_routes(
    const svc::CommInfo* extra, const svc::CommStrategy* extra_strategy,
    std::unordered_map<std::uint32_t, std::vector<GpuId>>& gpu_storage,
    std::unordered_map<std::uint32_t, svc::CommStrategy>& strategy_storage) {
  if (incremental_) {
    return compute_routes_incremental(extra, extra_strategy, gpu_storage,
                                      strategy_storage);
  }
  std::vector<AssignItem> items;
  bool extra_is_live = false;
  for (const svc::CommInfo& info : fabric_->list_communicators()) {
    gpu_storage[info.id.get()] = info.gpus;
    // A live comm named by `extra` gets the override strategy: the fabric
    // still reports the pre-swap one until the barrier completes.
    const bool overridden = extra != nullptr && info.id == extra->id;
    extra_is_live = extra_is_live || overridden;
    strategy_storage[info.id.get()] =
        overridden ? *extra_strategy : fabric_->strategy_of(info.id);
    AssignItem item;
    item.comm = info.id;
    item.app = info.app;
    item.gpus_by_rank = &gpu_storage[info.id.get()];
    item.strategy = &strategy_storage[info.id.get()];
    item.high_priority = priority_apps_.count(info.app.get()) > 0;
    items.push_back(item);
  }
  if (extra != nullptr && !extra_is_live) {
    gpu_storage[extra->id.get()] = extra->gpus;
    strategy_storage[extra->id.get()] = *extra_strategy;
    AssignItem item;
    item.comm = extra->id;
    item.app = extra->app;
    item.gpus_by_rank = &gpu_storage[extra->id.get()];
    item.strategy = &strategy_storage[extra->id.get()];
    item.high_priority = priority_apps_.count(extra->app.get()) > 0;
    items.push_back(item);
  }

  AssignOptions options;
  if (flow_policy_ == FlowPolicy::kPfa) options.reserved_routes = reserved_routes_;
  options.failed_links = failed_links_;
  options.telemetry = &fabric_->telemetry();
  options.now = fabric_->loop().now();
  return assign_flows(items, fabric_->cluster(), fabric_->network().routing(),
                      options);
}

std::unordered_map<std::uint32_t, RouteMap> Controller::compute_routes_incremental(
    const svc::CommInfo* extra, const svc::CommStrategy* extra_strategy,
    std::unordered_map<std::uint32_t, std::vector<GpuId>>& gpu_storage,
    std::unordered_map<std::uint32_t, svc::CommStrategy>& strategy_storage) {
  if (assigner_ == nullptr) {
    assigner_ = std::make_unique<IncrementalAssigner>(
        fabric_->cluster(), fabric_->network().routing());
  }
  assigner_->set_telemetry(&fabric_->telemetry());
  assigner_->set_reserved_routes(flow_policy_ == FlowPolicy::kPfa
                                     ? reserved_routes_
                                     : std::unordered_set<std::uint32_t>{});
  assigner_->set_failed_links(failed_links_);
  // Consume the netsim's change-set: links whose administrative state moved
  // since the last solve dirty exactly the tenants routed across them. The
  // ack releases consumed entries for trimming, bounding the log's memory.
  net::Network& network = fabric_->network();
  if (link_change_consumer_ < 0) {
    link_change_consumer_ = network.register_link_change_consumer();
  }
  const std::size_t end = network.link_change_end();
  for (std::size_t i = network.link_change_cursor(link_change_consumer_);
       i < end; ++i) {
    assigner_->mark_link_dirty(network.link_change(i).link);
  }
  network.ack_link_changes(link_change_consumer_, end);

  // Diff the fabric's live communicator set against the warm state:
  // departures first (their freed demand seeds the closure), then arrivals
  // and priority flips.
  std::vector<svc::CommInfo> live = fabric_->list_communicators();
  std::unordered_set<std::uint32_t> live_ids;
  for (const svc::CommInfo& info : live) {
    live_ids.insert(info.id.get());
    gpu_storage[info.id.get()] = info.gpus;
    strategy_storage[info.id.get()] = fabric_->strategy_of(info.id);
  }
  if (extra != nullptr) {
    if (live_ids.count(extra->id.get()) == 0) live.push_back(*extra);
    live_ids.insert(extra->id.get());
    gpu_storage[extra->id.get()] = extra->gpus;
    // Override: for an algorithm swap the fabric still reports the
    // pre-barrier strategy, so the caller's replacement wins.
    strategy_storage[extra->id.get()] = *extra_strategy;
  }
  for (CommId id : assigner_->item_ids()) {
    if (live_ids.count(id.get()) == 0) assigner_->remove_item(id);
  }
  for (const svc::CommInfo& info : live) {
    const bool priority = priority_apps_.count(info.app.get()) > 0;
    if (!assigner_->has_item(info.id)) {
      AssignItem item;
      item.comm = info.id;
      item.app = info.app;
      item.gpus_by_rank = &gpu_storage[info.id.get()];
      item.strategy = &strategy_storage[info.id.get()];
      item.high_priority = priority;
      assigner_->add_item(item);
    } else {
      // Sync the warm copy with the (possibly overridden) strategy. A
      // flow-shape change — an algorithm swap's new edge list — re-registers
      // the item and dirties the links its old flows loaded; route-only
      // differences just refresh the stored copy.
      assigner_->update_strategy(info.id, strategy_storage[info.id.get()]);
      if (assigner_->item_high_priority(info.id) != priority) {
        assigner_->set_high_priority(info.id, priority);
      }
    }
  }

  last_solve_stats_ = assigner_->solve(fabric_->loop().now());

  std::unordered_map<std::uint32_t, RouteMap> result;
  result.reserve(live.size());
  for (const svc::CommInfo& info : live) {
    result[info.id.get()] = assigner_->routes_of(info.id);
  }
  return result;
}

svc::CommStrategy Controller::provide(const svc::CommInfo& info) {
  svc::CommStrategy strategy = ring_strategy(info);
  if (auto_algorithm_bytes_ > 0) {
    strategy.algorithm = coll::choose_algorithm(
        coll::CollectiveKind::kAllReduce, info.nranks, auto_algorithm_bytes_,
        cost_params());
  }
  if (flow_policy_ == FlowPolicy::kEcmp) return strategy;

  std::unordered_map<std::uint32_t, std::vector<GpuId>> gpu_storage;
  std::unordered_map<std::uint32_t, svc::CommStrategy> strategy_storage;
  auto routes = compute_routes(&info, &strategy, gpu_storage, strategy_storage);

  // Reconfigure existing communicators whose placement moved.
  for (const svc::CommInfo& existing : fabric_->list_communicators()) {
    const RouteMap& updated = routes[existing.id.get()];
    svc::CommStrategy s = strategy_storage[existing.id.get()];
    if (s.routes != updated) {
      s.routes = updated;
      fabric_->reconfigure(existing.id, std::move(s));
    }
  }

  strategy.routes = std::move(routes[info.id.get()]);
  return strategy;
}

void Controller::rebalance() {
  if (flow_policy_ == FlowPolicy::kEcmp) return;
  std::unordered_map<std::uint32_t, std::vector<GpuId>> gpu_storage;
  std::unordered_map<std::uint32_t, svc::CommStrategy> strategy_storage;
  auto routes = compute_routes(nullptr, nullptr, gpu_storage, strategy_storage);
  for (const svc::CommInfo& info : fabric_->list_communicators()) {
    const RouteMap& updated = routes[info.id.get()];
    svc::CommStrategy s = strategy_storage[info.id.get()];
    if (s.routes != updated) {
      s.routes = updated;
      fabric_->reconfigure(info.id, std::move(s));
    }
  }
}

coll::CostParams Controller::cost_params() const {
  coll::CostParams p;
  const svc::ServiceConfig& cfg = fabric_->config();
  // One schedule hop on the critical path: post the send, cross the fabric.
  // The kernel-launch term folds in the per-step pipeline bubble the proxy
  // adds between dependent chunks.
  p.alpha = cfg.comm_kernel_launch + cfg.transport_step_overhead +
            cfg.network_hop_latency;
  // Bottleneck seconds-per-byte: the NIC uplink rate of the cluster's first
  // GPU (the testbed and sim clusters are NIC-homogeneous).
  const cluster::Cluster& cl = fabric_->cluster();
  const NodeId nic = cl.nic_node_of_gpu(GpuId{0});
  Bandwidth rate = 0.0;
  for (LinkId l : cl.topology().out_links(nic)) {
    rate = std::max(rate, cl.topology().link(l).capacity);
  }
  if (rate > 0.0) p.beta = 1.0 / rate;
  return p;
}

bool Controller::swap_algorithm(CommId comm, coll::Algorithm algorithm,
                                std::size_t tree_pipeline_chunks) {
  const svc::CommInfo& info = fabric_->comm_info(comm);
  svc::CommStrategy strategy = fabric_->strategy_of(comm);
  const bool same_chunks = tree_pipeline_chunks == 0 ||
                           tree_pipeline_chunks == strategy.tree_pipeline_chunks;
  if (strategy.algorithm == algorithm && same_chunks) return false;
  strategy.algorithm = algorithm;
  if (tree_pipeline_chunks > 0) {
    strategy.tree_pipeline_chunks = tree_pipeline_chunks;
  }

  if (flow_policy_ == FlowPolicy::kEcmp) {
    fabric_->reconfigure(comm, std::move(strategy));
    return true;
  }

  // Re-place flows with the new algorithm's compiled edge list. `strategy`
  // rides as the override — the fabric reports the pre-swap strategy until
  // the barrier completes, so compute_routes must not read it back.
  std::unordered_map<std::uint32_t, std::vector<GpuId>> gpu_storage;
  std::unordered_map<std::uint32_t, svc::CommStrategy> strategy_storage;
  auto routes = compute_routes(&info, &strategy, gpu_storage, strategy_storage);

  // The swapped communicator always reconfigures (its schedule changed even
  // when its routes did not); neighbours only when their placement moved.
  for (const svc::CommInfo& existing : fabric_->list_communicators()) {
    const RouteMap& updated = routes[existing.id.get()];
    svc::CommStrategy s = strategy_storage[existing.id.get()];
    if (existing.id == comm || s.routes != updated) {
      s.routes = updated;
      fabric_->reconfigure(existing.id, std::move(s));
    }
  }
  return true;
}

void Controller::enable_fault_recovery() {
  fabric_->set_stall_handler(
      [this](const svc::StallReport& report) { on_stall(report); });
}

void Controller::on_stall(const svc::StallReport& report) {
  ++stall_reports_;
  // Cross-check the stalled path against the monitoring plane's link
  // sampler (the same per-link view telemetry_snapshot exports): act only on
  // links the sampler shows administratively down AND carrying nothing — a
  // down link with allocated throughput would mean the solver and the state
  // machine disagree, which is not a state to reconfigure on — AND not yet
  // handled. Congestion stalls and repeat escalations over a known-dead link
  // fall through here, which keeps recovery idempotent.
  std::vector<LinkId> fresh;
  for (LinkId l : report.path) {
    const svc::Fabric::LinkSample s = fabric_->sample_link(l);
    if (s.state == net::LinkState::kDown && s.throughput <= 0.0 &&
        failed_links_.count(l.get()) == 0) {
      fresh.push_back(l);
    }
  }
  if (fresh.empty()) return;

  const Time detected = fabric_->loop().now();
  for (LinkId l : fresh) failed_links_.insert(l.get());
  const int n = reconfigure_around_failures(report.app);
  const int track = controller_track(*fabric_);
  for (LinkId l : fresh) {
    recovery_log_.push_back(
        RecoveryRecord{detected, fabric_->loop().now(), l, n});
    if (track >= 0) {
      // The RecoveryRecord as a span: stall confirmation to reconfigure
      // commands issued (detection latency is visible as the span length).
      fabric_->telemetry().timeline().span(
          track, "policy", "recovery", detected, fabric_->loop().now(),
          {{"link", static_cast<std::int64_t>(l.get())},
           {"comms_reconfigured", static_cast<std::int64_t>(n)},
           {"trigger", "stall_report"}});
    }
  }
}

void Controller::mark_link_failed(LinkId link) {
  if (!failed_links_.insert(link.get()).second) return;
  const Time detected = fabric_->loop().now();
  const int n = reconfigure_around_failures(AppId{});
  recovery_log_.push_back(
      RecoveryRecord{detected, fabric_->loop().now(), link, n});
  const int track = controller_track(*fabric_);
  if (track >= 0) {
    fabric_->telemetry().timeline().span(
        track, "policy", "recovery", detected, fabric_->loop().now(),
        {{"link", static_cast<std::int64_t>(link.get())},
         {"comms_reconfigured", static_cast<std::int64_t>(n)},
         {"trigger", "operator"}});
  }
}

void Controller::clear_link_failed(LinkId link) {
  if (failed_links_.erase(link.get()) == 0) return;
  // Restored capacity: spread flows back over the full path set.
  reconfigure_around_failures(AppId{});
}

std::vector<LinkId> Controller::failed_links() const {
  std::vector<LinkId> out;
  out.reserve(failed_links_.size());
  for (std::uint32_t l : failed_links_) out.push_back(LinkId{l});
  std::sort(out.begin(), out.end());
  return out;
}

int Controller::reconfigure_around_failures(AppId must_move) {
  int reconfigured = 0;
  if (flow_policy_ == FlowPolicy::kEcmp) {
    // No explicit routes to steer: reconfigure the affected app's comms so
    // the epoch bump re-rolls every connection's ECMP placement.
    for (const svc::CommInfo& info : fabric_->list_communicators()) {
      if (!must_move.valid() || info.app != must_move) continue;
      fabric_->reconfigure(info.id, fabric_->strategy_of(info.id));
      ++reconfigured;
    }
    return reconfigured;
  }

  std::unordered_map<std::uint32_t, std::vector<GpuId>> gpu_storage;
  std::unordered_map<std::uint32_t, svc::CommStrategy> strategy_storage;
  auto routes = compute_routes(nullptr, nullptr, gpu_storage, strategy_storage);
  for (const svc::CommInfo& info : fabric_->list_communicators()) {
    const RouteMap& updated = routes[info.id.get()];
    svc::CommStrategy s = strategy_storage[info.id.get()];
    // The stalled app reconfigures even with unchanged routes: the barrier's
    // epoch bump re-rolls its ECMP-placed connections too.
    if (s.routes != updated ||
        (must_move.valid() && info.app == must_move)) {
      s.routes = updated;
      fabric_->reconfigure(info.id, std::move(s));
      ++reconfigured;
    }
  }
  return reconfigured;
}

bool Controller::apply_time_schedule(AppId prio, const std::vector<AppId>& others,
                                     Time guard) {
  const CommPattern pattern = analyze_comm_pattern(fabric_->trace(prio));
  if (!pattern.valid()) return false;
  const svc::TrafficSchedule schedule = idle_window_schedule(pattern, guard);
  for (AppId app : others) fabric_->set_traffic_schedule(app, schedule);
  emit_ts_instant("ts_schedule", prio, others, schedule);
  return true;
}

bool Controller::apply_profiled_schedule(AppId prio,
                                         const std::vector<AppId>& others,
                                         Time period, Time t0, Time guard) {
  const svc::TrafficSchedule schedule =
      complement_of_busy(fabric_->trace(prio), period, t0, guard);
  if (schedule.allowed.empty()) return false;  // prio is never idle
  for (AppId app : others) fabric_->set_traffic_schedule(app, schedule);
  emit_ts_instant("ts_profiled_schedule", prio, others, schedule);
  return true;
}

void Controller::emit_ts_instant(const char* name, AppId prio,
                                 const std::vector<AppId>& others,
                                 const svc::TrafficSchedule& schedule) {
  const int track = controller_track(*fabric_);
  if (track < 0) return;
  fabric_->telemetry().timeline().instant(
      track, "policy", name, fabric_->loop().now(),
      {{"prio_app", static_cast<std::int64_t>(prio.get())},
       {"confined_apps", static_cast<std::int64_t>(others.size())},
       {"period_us", schedule.period * 1e6},
       {"windows", static_cast<std::int64_t>(schedule.allowed.size())}});
}

void Controller::clear_time_schedule(const std::vector<AppId>& apps) {
  for (AppId app : apps) fabric_->clear_traffic_schedule(app);
}

}  // namespace mccs::policy
