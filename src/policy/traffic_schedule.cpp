#include "policy/traffic_schedule.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace mccs::policy {

CommPattern analyze_comm_pattern(const std::vector<svc::TraceRecord>& trace) {
  // Use rank-0 records of the communicator with the most records: the
  // dominant training loop.
  std::map<std::uint32_t, std::vector<const svc::TraceRecord*>> by_comm;
  for (const auto& r : trace) {
    if (r.rank == 0 && r.completed > 0.0) by_comm[r.comm.get()].push_back(&r);
  }
  const std::vector<const svc::TraceRecord*>* records = nullptr;
  for (const auto& [comm, recs] : by_comm) {
    if (records == nullptr || recs.size() > records->size()) records = &recs;
  }
  if (records == nullptr || records->size() < 6) return {};

  auto recs = *records;
  std::sort(recs.begin(), recs.end(),
            [](const svc::TraceRecord* a, const svc::TraceRecord* b) {
              return a->issued < b->issued;
            });

  // Group records into bursts: a gap larger than the median inter-issue gap
  // times 4 starts a new burst (an iteration boundary).
  std::vector<double> gaps;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    gaps.push_back(recs[i]->issued - recs[i - 1]->issued);
  }
  std::vector<double> sorted_gaps = gaps;
  std::sort(sorted_gaps.begin(), sorted_gaps.end());
  const double median_gap = sorted_gaps[sorted_gaps.size() / 2];
  const double burst_threshold = std::max(median_gap * 4.0, 1e-9);

  struct Burst {
    Time begin;
    Time end;
  };
  std::vector<Burst> bursts;
  bursts.push_back({recs[0]->issued, recs[0]->completed});
  for (std::size_t i = 1; i < recs.size(); ++i) {
    if (recs[i]->issued - recs[i - 1]->issued > burst_threshold) {
      bursts.push_back({recs[i]->issued, recs[i]->completed});
    } else {
      bursts.back().end = std::max(bursts.back().end, recs[i]->completed);
    }
  }
  if (bursts.size() < 3) return {};

  // Period: median of burst-start differences.
  std::vector<double> periods;
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    periods.push_back(bursts[i].begin - bursts[i - 1].begin);
  }
  std::sort(periods.begin(), periods.end());
  const double period = periods[periods.size() / 2];
  if (period <= 0.0) return {};

  // Busy window: longest observed burst, phase-anchored at the last burst.
  double busy = 0.0;
  for (const Burst& b : bursts) busy = std::max(busy, b.end - b.begin);
  busy = std::min(busy, period);

  CommPattern p;
  p.period = period;
  p.t0 = bursts.back().begin;
  p.busy_begin = 0.0;
  p.busy_end = busy;
  return p;
}

svc::TrafficSchedule complement_of_busy(const std::vector<svc::TraceRecord>& trace,
                                        Time period, Time t0, Time guard) {
  MCCS_EXPECTS(period > 0.0);
  // Fold busy intervals into [0, period).
  struct Interval {
    double begin;
    double end;
  };
  // Fold only the recent past: older iterations (possibly from a different
  // contention regime) would smear the busy set over the whole period.
  const Time lookback = t0 - 3.0 * period;
  std::vector<Interval> busy;
  for (const auto& r : trace) {
    if (r.rank != 0 || r.completed <= 0.0) continue;
    // Busy means the collective was on the wire: [started, completed].
    // (Asynchronous apps enqueue whole iterations at once, so `issued`
    // timestamps clump at iteration starts.)
    if (r.started < lookback || r.started > t0 + period) continue;
    double b = std::fmod(r.started - guard - t0, period);
    if (b < 0.0) b += period;  // records before the anchor wrap backwards
    double len = (r.completed + guard) - (r.started - guard);
    len = std::min(len, period);
    if (b + len <= period) {
      busy.push_back({b, b + len});
    } else {  // wraps
      busy.push_back({b, period});
      busy.push_back({0.0, b + len - period});
    }
  }
  svc::TrafficSchedule s;
  s.t0 = t0;
  s.period = period;
  if (busy.empty()) {
    s.allowed.push_back({0.0, period});  // prio never communicates: all open
    return s;
  }
  std::sort(busy.begin(), busy.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  // Merge and complement.
  std::vector<Interval> merged;
  for (const Interval& iv : busy) {
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  double cursor = 0.0;
  for (const Interval& iv : merged) {
    if (iv.begin > cursor) s.allowed.push_back({cursor, iv.begin});
    cursor = std::max(cursor, iv.end);
  }
  if (cursor < period) s.allowed.push_back({cursor, period});
  // Drop slivers the gating machinery cannot use.
  std::erase_if(s.allowed, [](const svc::TrafficSchedule::Window& w) {
    return w.end - w.begin < 1e-4;
  });
  return s;
}

svc::TrafficSchedule idle_window_schedule(const CommPattern& pattern, Time guard) {
  MCCS_EXPECTS(pattern.valid());
  svc::TrafficSchedule s;
  s.t0 = pattern.t0;
  s.period = pattern.period;
  const Time open = std::min(pattern.busy_end + guard, pattern.period);
  const Time close = pattern.period;
  if (open < close) {
    s.allowed.push_back({open, close});
  }
  return s;
}

}  // namespace mccs::policy
